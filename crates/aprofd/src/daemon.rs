//! The daemon: job store, worker pool, endpoints, and restart-resume.
//!
//! Every job lives in the state directory as a small family of files
//! keyed by its deterministic ID:
//!
//! ```text
//! job-<id>.spec          canonical spec + submission counter (written at admission)
//! job-<id>.journal       per-job checkpoint journal (supervisor-appended, fsynced)
//! job-<id>.bench.json    drms-sweep-v2 artifact (atomic, deterministic)
//! job-<id>.report.txt    merged profile report (atomic, deterministic)
//! job-<id>.metrics.json  merged metrics registry (atomic, deterministic)
//! job-<id>.done          completion summary (atomic; presence = job finished)
//! job-<id>.failed        failure summary (atomic; presence = job failed)
//! ```
//!
//! The `.spec` file is the durability point: a submission is
//! acknowledged only after its spec is atomically on disk, so a
//! `kill -9` at *any* later moment leaves either a finished job (done
//! marker present) or a resumable one (spec present, journal salvaged
//! by [`resume_sweep`], missing cells re-run). Restart scans the
//! directory, restores the submission counter, and re-queues every
//! unfinished job — artifacts come out byte-identical to an
//! uninterrupted run.

use crate::http::{Request, Response};
use crate::queue::{Admission, AdmissionQueue, QueueConfig};
use crate::spec::{job_id, JobSpec};
use drms::analysis::{sweep_snapshot, CostPlot, InputMetric};
use drms::trace::journal;
use drms::trace::Metrics;
use drms_bench::artifact::atomic_write;
use drms_bench::supervisor::{
    decode_cell_payload, profile_cell, resume_sweep, run_supervised_with, JournalWriter,
};
use drms_bench::sweep::{family_workload, FamilyBench, SweepBench, SweepCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Daemon configuration (CLI flags map 1:1 onto this).
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Directory holding specs, journals, and artifacts.
    pub state_dir: PathBuf,
    /// Concurrent jobs. `0` is a valid admission-only mode (jobs queue
    /// but never run) used by tests and the CI full-queue gate.
    pub workers: usize,
    /// Admission bounds.
    pub queue: QueueConfig,
}

/// Lifecycle state of one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is sweeping its grid.
    Running,
    /// Finished; artifacts and the done marker are on disk.
    Done,
    /// Could not run (journal spec mismatch, I/O failure). The string
    /// is the human-readable cause.
    Failed(String),
}

impl JobState {
    /// The wire name of this state (the `state` line of `/jobs/{id}`).
    pub fn as_str(&self) -> &str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// Attempt/retry accounting of a finished job (mirrors the sweep's own
/// derived counters, so a resumed job reports identical numbers).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobSummary {
    /// Total cell attempts.
    pub attempts: u64,
    /// Attempts beyond the first, per cell, summed.
    pub retries: u64,
    /// Cells quarantined after exhausting their attempts.
    pub quarantined: u64,
    /// Completed cells.
    pub cells: u64,
    /// Fingerprint of the merged report (`drms-sweep-v2` discipline).
    pub fingerprint: u64,
}

impl JobSummary {
    fn to_text(&self) -> String {
        format!(
            "attempts {}\nretries {}\nquarantined {}\ncells {}\nfingerprint {:016x}\n",
            self.attempts, self.retries, self.quarantined, self.cells, self.fingerprint
        )
    }

    fn parse(text: &str) -> JobSummary {
        let mut s = JobSummary::default();
        for line in text.lines() {
            let Some((k, v)) = line.split_once(' ') else {
                continue;
            };
            match k {
                "attempts" => s.attempts = v.parse().unwrap_or(0),
                "retries" => s.retries = v.parse().unwrap_or(0),
                "quarantined" => s.quarantined = v.parse().unwrap_or(0),
                "cells" => s.cells = v.parse().unwrap_or(0),
                "fingerprint" => s.fingerprint = u64::from_str_radix(v, 16).unwrap_or(0),
                _ => {}
            }
        }
        s
    }
}

struct JobEntry {
    spec: JobSpec,
    submitted: u64,
    state: JobState,
    resumed: bool,
    summary: Option<JobSummary>,
}

struct Inner {
    entries: BTreeMap<String, JobEntry>,
    queue: AdmissionQueue,
    counter: u64,
    running_jobs: usize,
}

/// The shared daemon state. Cheap to clone behind an [`Arc`]; the
/// worker pool, the accept loop, and every connection handler hold one.
pub struct Daemon {
    cfg: DaemonConfig,
    inner: Mutex<Inner>,
    cv: Condvar,
    metrics: Mutex<Metrics>,
    draining: AtomicBool,
}

impl Daemon {
    /// Creates the daemon over `cfg.state_dir`, creating the directory
    /// and restoring every journaled job found in it: done/failed jobs
    /// load as records, unfinished ones re-queue for resume in
    /// submission order, and the submission counter continues past the
    /// highest restored value (so new job IDs never collide).
    pub fn new(cfg: DaemonConfig) -> std::io::Result<Arc<Daemon>> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let mut inner = Inner {
            entries: BTreeMap::new(),
            queue: AdmissionQueue::new(cfg.queue.clone()),
            counter: 0,
            running_jobs: 0,
        };
        let mut metrics = Metrics::new();

        let mut restored: Vec<(u64, String, String)> = Vec::new(); // (submitted, id, tenant)
        for entry in std::fs::read_dir(&cfg.state_dir)? {
            let name = entry?.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("job-"))
                .and_then(|n| n.strip_suffix(".spec"))
            else {
                continue;
            };
            let id = id.to_string();
            let text = std::fs::read_to_string(cfg.state_dir.join(&*name))?;
            let mut submitted = 0u64;
            let mut spec_lines = String::new();
            for line in text.lines() {
                if let Some(v) = line.strip_prefix("submitted ") {
                    submitted = v.parse().unwrap_or(0);
                } else {
                    spec_lines.push_str(line);
                    spec_lines.push('\n');
                }
            }
            let spec = match JobSpec::parse(&spec_lines) {
                Ok(s) => s,
                Err(e) => {
                    // A spec this daemon once accepted no longer parses
                    // (config drift): record the failure, don't crash.
                    metrics.inc("aprofd.jobs.unloadable");
                    inner.entries.insert(
                        id,
                        JobEntry {
                            spec: JobSpec::default(),
                            submitted,
                            state: JobState::Failed(format!("unloadable spec: {e}")),
                            resumed: true,
                            summary: None,
                        },
                    );
                    continue;
                }
            };
            inner.counter = inner.counter.max(submitted);
            let done = cfg.state_dir.join(format!("job-{id}.done"));
            let failed = cfg.state_dir.join(format!("job-{id}.failed"));
            let (state, summary) = if let Ok(t) = std::fs::read_to_string(&done) {
                (JobState::Done, Some(JobSummary::parse(&t)))
            } else if let Ok(t) = std::fs::read_to_string(&failed) {
                (JobState::Failed(t.trim().to_string()), None)
            } else {
                restored.push((submitted, id.clone(), spec.tenant.clone()));
                (JobState::Queued, None)
            };
            inner.entries.insert(
                id,
                JobEntry {
                    spec,
                    submitted,
                    state,
                    resumed: true,
                    summary,
                },
            );
        }
        // Re-queue unfinished jobs in their original submission order,
        // bypassing admission caps (they were admitted pre-crash).
        restored.sort();
        for (_, id, tenant) in restored {
            inner.queue.restore(&tenant, &id);
            metrics.inc("aprofd.jobs.restored");
        }
        metrics.set_gauge("aprofd.queue.depth", inner.queue.queued() as u64);

        Ok(Arc::new(Daemon {
            cfg,
            inner: Mutex::new(inner),
            cv: Condvar::new(),
            metrics: Mutex::new(metrics),
            draining: AtomicBool::new(false),
        }))
    }

    fn job_path(&self, id: &str, suffix: &str) -> PathBuf {
        self.cfg.state_dir.join(format!("job-{id}.{suffix}"))
    }

    /// Begins the graceful drain: submissions are refused with a typed
    /// 503, running jobs finish, queued jobs stay durable on disk for
    /// the next start. Idempotent.
    pub fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            self.metrics.lock().unwrap().inc("aprofd.drains");
        }
        self.cv.notify_all();
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Whether the drain has finished (no job mid-run). Queued jobs do
    /// not block exit — their specs are durable and the next start
    /// resumes them.
    pub fn drain_complete(&self) -> bool {
        self.is_draining() && self.inner.lock().unwrap().running_jobs == 0
    }

    /// Spawns the worker pool (`cfg.workers` threads).
    pub fn spawn_workers(self: &Arc<Self>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.cfg.workers)
            .map(|_| {
                let d = Arc::clone(self);
                std::thread::spawn(move || d.worker_loop())
            })
            .collect()
    }

    fn worker_loop(&self) {
        loop {
            let popped = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if let Some((tenant, id)) = inner.queue.pop_fair() {
                        inner.running_jobs += 1;
                        if let Some(e) = inner.entries.get_mut(&id) {
                            e.state = JobState::Running;
                        }
                        break Some((tenant, id));
                    }
                    if self.is_draining() {
                        break None;
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(inner, Duration::from_millis(100))
                        .unwrap();
                    inner = guard;
                }
            };
            let Some((tenant, id)) = popped else {
                return;
            };
            self.publish_depth();
            let outcome = self.run_job(&id);
            {
                let mut inner = self.inner.lock().unwrap();
                inner.queue.finished(&tenant);
                inner.running_jobs -= 1;
                if let Some(e) = inner.entries.get_mut(&id) {
                    match outcome {
                        Ok(summary) => {
                            e.state = JobState::Done;
                            e.summary = Some(summary);
                        }
                        Err(msg) => e.state = JobState::Failed(msg),
                    }
                }
            }
            let mut m = self.metrics.lock().unwrap();
            m.inc("aprofd.jobs.finished");
            drop(m);
            self.publish_depth();
            self.cv.notify_all();
        }
    }

    /// Runs (or resumes) one job to its artifacts. Every failure mode
    /// the sweep itself can absorb — panics, deadlines, budgets,
    /// transient faults — is already the supervisor's business; only
    /// setup-level failures (journal unusable, artifact I/O) fail the
    /// job, and those are recorded durably in the `.failed` marker.
    fn run_job(&self, id: &str) -> Result<JobSummary, String> {
        let spec = {
            let inner = self.inner.lock().unwrap();
            match inner.entries.get(id) {
                Some(e) => e.spec.clone(),
                None => return Err("job vanished from the store".to_string()),
            }
        };
        let sweep_spec = spec.sweep_spec();
        let opts = spec.supervisor_options();
        let journal_path = self.job_path(id, "journal");

        let journal_bytes = std::fs::metadata(&journal_path)
            .map(|m| m.len())
            .unwrap_or(0);
        let (result, resumed) = if journal_bytes > 0 {
            match resume_sweep(&sweep_spec, &opts, &journal_path) {
                Ok((result, report)) => {
                    let mut m = self.metrics.lock().unwrap();
                    m.inc("aprofd.jobs.resumed");
                    m.merge(&report.metrics)
                        .map_err(|e| format!("resume metrics merge: {e}"))?;
                    drop(m);
                    (result, true)
                }
                Err(e) => {
                    let msg = render_error_chain(&e);
                    let _ = atomic_write(&self.job_path(id, "failed"), &msg);
                    return Err(msg);
                }
            }
        } else {
            let mut writer = JournalWriter::create(&journal_path)
                .map_err(|e| self.fail_job(id, format!("journal create: {e}")))?;
            (
                run_supervised_with(&sweep_spec, &opts, Some(&mut writer), &profile_cell),
                false,
            )
        };

        let summary = JobSummary {
            attempts: result.attempts(),
            retries: result.retries(),
            quarantined: result.quarantined.len() as u64,
            cells: result.cells.len() as u64,
            fingerprint: result.fingerprint(),
        };
        let report_text = result.merged_report_text();
        let metrics_json = result.merged_metrics().to_json();
        let bench = SweepBench {
            jobs: spec.jobs,
            resumed,
            families: vec![FamilyBench::from_resumed(result)],
        };
        let write = |suffix: &str, contents: &str| {
            atomic_write(&self.job_path(id, suffix), contents)
                .map_err(|e| self.fail_job(id, format!("artifact `{suffix}`: {e}")))
        };
        write("bench.json", &bench.to_json())?;
        write("report.txt", &report_text)?;
        write("metrics.json", &metrics_json)?;
        write("done", &summary.to_text())?;
        Ok(summary)
    }

    /// Records a job failure durably and returns the message (for use
    /// as the in-memory state).
    fn fail_job(&self, id: &str, msg: String) -> String {
        let _ = atomic_write(&self.job_path(id, "failed"), &msg);
        msg
    }

    fn publish_depth(&self) {
        let (queued, running) = {
            let inner = self.inner.lock().unwrap();
            (inner.queue.queued(), inner.running_jobs)
        };
        let mut m = self.metrics.lock().unwrap();
        m.set_gauge("aprofd.queue.depth", queued as u64);
        m.set_gauge("aprofd.jobs.running", running as u64);
    }

    // ------------------------------------------------------------------
    // Endpoints
    // ------------------------------------------------------------------

    /// Routes one request. Pure with respect to the connection — tests
    /// call this directly without a socket.
    pub fn handle(&self, req: &Request) -> Response {
        self.metrics.lock().unwrap().inc("aprofd.http.requests");
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/metrics") => Response::ok(self.metrics.lock().unwrap().to_prometheus()),
            ("POST", "/jobs") => self.submit(&req.body),
            ("POST", "/shutdown") => {
                self.begin_drain();
                Response::ok("draining\n")
            }
            ("GET", path) => {
                if let Some(rest) = path.strip_prefix("/jobs/") {
                    match rest.split_once('/') {
                        None => self.job_status(rest),
                        Some((id, "report")) => self.job_report(id, req.query_u64("since")),
                        Some((id, "metrics")) => self.job_metrics(id),
                        Some(_) => Response::text(404, "not found\n"),
                    }
                } else {
                    Response::text(404, "not found\n")
                }
            }
            _ => Response::text(404, "not found\n"),
        }
    }

    fn healthz(&self) -> Response {
        let inner = self.inner.lock().unwrap();
        let done = inner
            .entries
            .values()
            .filter(|e| e.state == JobState::Done)
            .count();
        Response::ok(format!(
            "ok\nqueued {}\nrunning {}\ndone {}\njobs {}\ndraining {}\n",
            inner.queue.queued(),
            inner.running_jobs,
            done,
            inner.entries.len(),
            self.is_draining() as u8,
        ))
    }

    /// Admission: parse → validate → durably persist the spec → queue.
    /// The bounded queue makes the refusal typed and explicit; nothing
    /// about a shed submission is retained.
    fn submit(&self, body: &str) -> Response {
        if self.is_draining() {
            self.metrics
                .lock()
                .unwrap()
                .inc("aprofd.jobs.refused_draining");
            return Response::shed(503, 1000, "draining: submissions refused; retry later\n");
        }
        let spec = match JobSpec::parse(body) {
            Ok(s) => s,
            Err(e) => {
                self.metrics
                    .lock()
                    .unwrap()
                    .inc("aprofd.jobs.rejected_spec");
                return Response::text(400, format!("rejected: {e}\n"));
            }
        };
        let (id, decision) = {
            let mut inner = self.inner.lock().unwrap();
            let submitted = inner.counter + 1;
            let id = job_id(&spec, submitted);
            let decision = inner.queue.offer(&spec.tenant, &id);
            if decision == Admission::Queued {
                inner.counter = submitted;
                // Durability point: acknowledge only after the spec is
                // atomically on disk. Failure to persist is a refusal,
                // not a half-admitted job.
                let spec_text = format!("{}submitted {submitted}\n", spec.canonical_text());
                if let Err(e) = atomic_write(&self.job_path(&id, "spec"), &spec_text) {
                    // The queued slot drains harmlessly: a worker pops the
                    // id, finds no entry, and records nothing.
                    return Response::text(500, format!("spec persist failed: {e}\n"));
                }
                inner.entries.insert(
                    id.clone(),
                    JobEntry {
                        spec: spec.clone(),
                        submitted,
                        state: JobState::Queued,
                        resumed: false,
                        summary: None,
                    },
                );
            }
            (id, decision)
        };
        let mut m = self.metrics.lock().unwrap();
        match decision {
            Admission::Queued => {
                m.inc("aprofd.jobs.submitted");
                drop(m);
                self.publish_depth();
                self.cv.notify_all();
                Response::ok(format!("{id}\n"))
            }
            Admission::ShedFull {
                queued,
                retry_after_ms,
            } => {
                m.inc("aprofd.jobs.shed_full");
                Response::shed(
                    429,
                    retry_after_ms,
                    format!(
                        "shed: queue full ({queued} queued); retry after {retry_after_ms} ms\n"
                    ),
                )
            }
            Admission::ShedTenant {
                queued,
                retry_after_ms,
            } => {
                m.inc("aprofd.jobs.shed_tenant");
                Response::shed(
                    429,
                    retry_after_ms,
                    format!(
                        "shed: tenant quota exhausted ({queued} queued); retry after {retry_after_ms} ms\n"
                    ),
                )
            }
        }
    }

    fn job_status(&self, id: &str) -> Response {
        let inner = self.inner.lock().unwrap();
        let Some(e) = inner.entries.get(id) else {
            return Response::text(404, format!("no such job `{id}`\n"));
        };
        let total = e.spec.grid_len();
        let mut out = String::new();
        let _ = writeln!(out, "id {id}");
        let _ = writeln!(out, "tenant {}", e.spec.tenant);
        let _ = writeln!(out, "family {}", e.spec.family);
        let _ = writeln!(out, "state {}", e.state.as_str());
        let _ = writeln!(out, "submitted {}", e.submitted);
        let _ = writeln!(out, "resumed {}", e.resumed as u8);
        match (&e.state, &e.summary) {
            (JobState::Done, Some(s)) => {
                let _ = writeln!(out, "cells {}/{total}", s.cells);
                let _ = writeln!(out, "attempts {}", s.attempts);
                let _ = writeln!(out, "retries {}", s.retries);
                let _ = writeln!(out, "quarantined {}", s.quarantined);
                let _ = writeln!(out, "fingerprint {:016x}", s.fingerprint);
            }
            (JobState::Failed(msg), _) => {
                let _ = writeln!(out, "error {}", msg.replace('\n', " "));
            }
            _ => {
                // Live accounting straight from the journal: cells land
                // there (fsynced) the moment they finish.
                drop(inner);
                let (cells, attempts, quarantined) = self.live_accounting(id);
                let _ = writeln!(out, "cells {cells}/{total}");
                let _ = writeln!(out, "attempts {attempts}");
                let _ = writeln!(out, "quarantined {quarantined}");
            }
        }
        Response::ok(out)
    }

    /// Salvages the job's journal (tolerating the torn tail of a live
    /// append) and decodes its completed cells in record order.
    fn live_cells(&self, id: &str) -> Vec<(usize, SweepCell)> {
        let Ok(text) = std::fs::read_to_string(self.job_path(id, "journal")) else {
            return Vec::new();
        };
        let salvaged = journal::from_text_lossy(&text);
        let mut cells = Vec::new();
        for rec in &salvaged.records {
            let mut tok = rec.meta.split(' ');
            if tok.next() != Some("cell") {
                continue;
            }
            let (Some(_family), Some(idx), Some("ok")) = (tok.next(), tok.next(), tok.next())
            else {
                continue;
            };
            let Ok(idx) = idx.parse::<usize>() else {
                continue;
            };
            if let Ok(cell) = decode_cell_payload(&rec.payload) {
                cells.push((idx, cell));
            }
        }
        cells
    }

    fn live_accounting(&self, id: &str) -> (usize, u64, usize) {
        let Ok(text) = std::fs::read_to_string(self.job_path(id, "journal")) else {
            return (0, 0, 0);
        };
        let salvaged = journal::from_text_lossy(&text);
        let mut cells = 0usize;
        let mut quarantined = 0usize;
        let mut attempts = 0u64;
        for rec in &salvaged.records {
            if !rec.meta.starts_with("cell ") {
                continue;
            }
            if rec.meta.ends_with(" ok") {
                cells += 1;
                if let Ok(c) = decode_cell_payload(&rec.payload) {
                    attempts += c.attempts as u64;
                }
            } else if rec.meta.ends_with(" quarantined") {
                quarantined += 1;
            }
        }
        (cells, attempts, quarantined)
    }

    /// Snapshot (`/jobs/{id}/report`) and delta
    /// (`/jobs/{id}/report?since=N`) rendering of a live run, straight
    /// from the journal. Done jobs serve their final artifact.
    fn job_report(&self, id: &str, since: Option<u64>) -> Response {
        let (state, family, total) = {
            let inner = self.inner.lock().unwrap();
            let Some(e) = inner.entries.get(id) else {
                return Response::text(404, format!("no such job `{id}`\n"));
            };
            (e.state.clone(), e.spec.family.clone(), e.spec.grid_len())
        };
        if since.is_none() && state == JobState::Done {
            return match std::fs::read_to_string(self.job_path(id, "report.txt")) {
                Ok(text) => Response::ok(text),
                Err(e) => Response::text(500, format!("artifact unreadable: {e}\n")),
            };
        }
        let cells = self.live_cells(id);
        let mut out = String::new();
        let _ = writeln!(out, "cursor {}", cells.len());
        let skip = since.unwrap_or(0) as usize;
        for (idx, cell) in cells.iter().skip(skip) {
            let _ = writeln!(
                out,
                "cell {idx} size {} seed {} attempts {} shadow_bytes {}",
                cell.size, cell.seed, cell.attempts, cell.shadow_bytes
            );
        }
        if since.is_none() {
            // Full snapshot: the partial drms plot of the family's focus
            // routine (worst-case cost per input, mirroring
            // `SweepResult::focus_plot`) plus the current fit,
            // re-rendered on every poll as the model converges.
            let mut worst: BTreeMap<u64, u64> = BTreeMap::new();
            if let Some(focus) = family_workload(&family, 1).and_then(|w| w.focus) {
                for (_, cell) in &cells {
                    let profile = cell.report.merged_routine(focus);
                    for (input, cost) in CostPlot::of(&profile, InputMetric::Drms).points {
                        let e = worst.entry(input).or_insert(cost);
                        *e = (*e).max(cost);
                    }
                }
            }
            let points: Vec<(u64, u64)> = worst.into_iter().collect();
            out.push_str(&sweep_snapshot(&family, &points, cells.len(), total));
        }
        Response::ok(out)
    }

    /// Streams the job's merged metrics as Prometheus text, rebuilt
    /// from the journal so live and finished jobs share one code path.
    /// A bucket-layout mismatch between cells surfaces as the typed
    /// [`drms::Error::Metrics`] chain, not a panic.
    fn job_metrics(&self, id: &str) -> Response {
        if !self.inner.lock().unwrap().entries.contains_key(id) {
            return Response::text(404, format!("no such job `{id}`\n"));
        }
        let mut merged = Metrics::new();
        for (_, cell) in self.live_cells(id) {
            if let Err(e) = merged.merge(&cell.metrics) {
                let err = drms::Error::from(e);
                return Response::text(500, render_error_chain(&err));
            }
        }
        Response::ok(merged.to_prometheus())
    }
}

/// Renders an error with its `source()` chain, one frame per line.
fn render_error_chain(err: &dyn std::error::Error) -> String {
    let mut out = format!("{err}\n");
    let mut src = err.source();
    while let Some(e) = src {
        let _ = writeln!(out, "  caused by: {e}");
        src = e.source();
    }
    out
}

/// Serves `daemon` on `listener` until the drain completes: accepts
/// connections (each handled on its own thread), refuses new
/// submissions while draining, and returns once no job is mid-run.
/// Both the `aprofd` binary and the in-process tests run this.
pub fn serve(daemon: Arc<Daemon>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if daemon.drain_complete() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let d = Arc::clone(&daemon);
                std::thread::spawn(move || handle_connection(&d, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(daemon: &Daemon, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = std::io::BufReader::new(stream);
    let response = match crate::http::read_request(&mut reader) {
        Ok(req) => daemon.handle(&req),
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            Response::text(400, format!("bad request: {e}\n"))
        }
        Err(_) => return, // torn connection; nothing to answer
    };
    let _ = crate::http::write_response(&mut write_half, &response);
}
