//! The daemon: job store, worker pool, endpoints, and restart-resume.
//!
//! Every job lives in the state directory as a small family of files
//! keyed by its deterministic ID:
//!
//! ```text
//! job-<id>.spec          canonical spec + submission counter (written at admission)
//! job-<id>.journal       per-job checkpoint journal (supervisor-appended, fsynced)
//! job-<id>.bench.json    drms-sweep-v2 artifact (atomic, deterministic)
//! job-<id>.report.txt    merged profile report (atomic, deterministic)
//! job-<id>.metrics.json  merged metrics registry (atomic, deterministic)
//! job-<id>.done          completion summary (atomic; presence = job finished)
//! job-<id>.failed        failure summary (atomic; presence = job failed)
//! gc.tombstones          journal of pruned job IDs (written before deletion)
//! ```
//!
//! The `.spec` file is the durability point: a submission is
//! acknowledged only after its spec is atomically on disk, so a
//! `kill -9` at *any* later moment leaves either a finished job (done
//! marker present) or a resumable one (spec present, journal salvaged
//! by [`resume_sweep`], missing cells re-run). Restart scans the
//! directory, restores the submission counter, and re-queues every
//! unfinished job — artifacts come out byte-identical to an
//! uninterrupted run.
//!
//! Retention GC prunes finished jobs beyond [`DaemonConfig::retain_count`]
//! / older than [`DaemonConfig::retain_age`]. Each pruned ID is first
//! appended (fsynced) to the `gc.tombstones` journal, *then* its files
//! are deleted — so a crash between the two leaves a tombstone the
//! startup scan honors (leftovers removed, job never resurrected) and
//! the submission counter continues past pruned jobs (IDs never
//! collide).
//!
//! Every host write goes through [`DaemonConfig::host_io`]: production
//! uses real I/O; tests and `aprofd --host-faults` inject ENOSPC,
//! fsync-EIO, and torn writes. A spec that cannot be persisted is shed
//! with a typed 507 and a deterministic retry-after — the queue slot is
//! withdrawn, the counter is not advanced, and the daemon keeps serving.

use crate::http::{Request, RequestError, Response, MAX_REQUESTS_PER_CONN};
use crate::queue::{Admission, AdmissionQueue, QueueConfig};
use crate::spec::{job_id, JobSpec};
use drms::analysis::{sweep_snapshot, CostPlot, InputMetric};
use drms::trace::hostio::HostIo;
use drms::trace::journal;
use drms::trace::Metrics;
use drms_bench::artifact::atomic_write_with;
use drms_bench::supervisor::{
    decode_cell_payload, profile_cell, resume_sweep_preemptible_with_io,
    run_supervised_preemptible, JournalWriter, PreemptSignal, SupervisedRun,
};
use drms_bench::sweep::{family_workload, FamilyBench, SweepBench, SweepCell};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, SystemTime};

/// Deterministic retry-after for the 507 disk-full shed: long enough
/// that an operator plausibly freed space, fixed so clients and tests
/// see the same hint every time.
pub const DISK_FULL_RETRY_MS: u64 = 5_000;

/// Sleep quantum of the `/jobs/{id}/events` long-poll loop: new journal
/// cells are noticed within this bound without a wakeup channel.
const POLL_STEP: Duration = Duration::from_millis(20);

/// Daemon configuration (CLI flags map 1:1 onto this).
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Directory holding specs, journals, and artifacts.
    pub state_dir: PathBuf,
    /// Concurrent jobs. `0` is a valid admission-only mode (jobs queue
    /// but never run) used by tests and the CI full-queue gate.
    pub workers: usize,
    /// Admission bounds.
    pub queue: QueueConfig,
    /// Host file I/O for every durable write (specs, journals,
    /// artifacts, tombstones). Real in production; fault-injected under
    /// test and behind `--host-faults`.
    pub host_io: HostIo,
    /// Keep at most this many finished (done/failed) jobs on disk;
    /// older ones are tombstoned and pruned. `None` = keep all.
    pub retain_count: Option<usize>,
    /// Prune finished jobs whose completion marker is older than this.
    /// `None` = no age limit.
    pub retain_age: Option<Duration>,
    /// Concurrent connections admitted (queued + being handled); excess
    /// connections get an immediate 503 shed instead of an unbounded
    /// thread per socket.
    pub max_connections: usize,
    /// Fixed connection-handler threads fed by the bounded accept
    /// queue. The daemon's thread count is `io_threads + workers`
    /// plus the accept loop — never a thread per connection.
    pub io_threads: usize,
    /// Per-socket read/write deadline — a slow-loris client dribbling
    /// bytes gets a typed 408 when it expires, not a parked thread.
    /// Doubles as the keep-alive idle deadline: a persistent connection
    /// with no next request within it is closed silently.
    pub read_timeout: Duration,
    /// Longest a `/jobs/{id}/events` long-poll blocks for a newer
    /// journal delta before answering with whatever is there.
    pub poll_timeout: Duration,
    /// Enables `GET /debug/panic` (a handler that panics on purpose) so
    /// chaos tests can prove a panicking handler frees its connection
    /// slot. Never enabled in production defaults.
    pub debug_endpoints: bool,
}

impl DaemonConfig {
    /// Production defaults over `state_dir`: 2 workers, default queue
    /// bounds, real host I/O, no retention limits, 64 connections over
    /// 4 io-threads, 10 s socket deadlines and long-poll timeout.
    pub fn new(state_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            state_dir: state_dir.into(),
            workers: 2,
            queue: QueueConfig::default(),
            host_io: HostIo::real(),
            retain_count: None,
            retain_age: None,
            max_connections: 64,
            io_threads: 4,
            read_timeout: Duration::from_secs(10),
            poll_timeout: Duration::from_secs(10),
            debug_endpoints: false,
        }
    }
}

/// Lifecycle state of one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is sweeping its grid.
    Running,
    /// Finished; artifacts and the done marker are on disk.
    Done,
    /// Could not run (journal spec mismatch, I/O failure). The string
    /// is the human-readable cause.
    Failed(String),
}

impl JobState {
    /// The wire name of this state (the `state` line of `/jobs/{id}`).
    pub fn as_str(&self) -> &str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// Attempt/retry accounting of a finished job (mirrors the sweep's own
/// derived counters, so a resumed job reports identical numbers).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobSummary {
    /// Total cell attempts.
    pub attempts: u64,
    /// Attempts beyond the first, per cell, summed.
    pub retries: u64,
    /// Cells quarantined after exhausting their attempts.
    pub quarantined: u64,
    /// Completed cells.
    pub cells: u64,
    /// Fingerprint of the merged report (`drms-sweep-v2` discipline).
    pub fingerprint: u64,
}

impl JobSummary {
    fn to_text(&self) -> String {
        format!(
            "attempts {}\nretries {}\nquarantined {}\ncells {}\nfingerprint {:016x}\n",
            self.attempts, self.retries, self.quarantined, self.cells, self.fingerprint
        )
    }

    fn parse(text: &str) -> JobSummary {
        let mut s = JobSummary::default();
        for line in text.lines() {
            let Some((k, v)) = line.split_once(' ') else {
                continue;
            };
            match k {
                "attempts" => s.attempts = v.parse().unwrap_or(0),
                "retries" => s.retries = v.parse().unwrap_or(0),
                "quarantined" => s.quarantined = v.parse().unwrap_or(0),
                "cells" => s.cells = v.parse().unwrap_or(0),
                "fingerprint" => s.fingerprint = u64::from_str_radix(v, 16).unwrap_or(0),
                _ => {}
            }
        }
        s
    }
}

struct JobEntry {
    spec: JobSpec,
    submitted: u64,
    state: JobState,
    resumed: bool,
    summary: Option<JobSummary>,
}

/// Book-keeping for one job mid-run: enough to pick a preemption
/// victim (base priority, deterministic job-ID tie-break via the map
/// key) and to signal it.
struct RunningJob {
    priority: u8,
    signal: PreemptSignal,
}

struct Inner {
    entries: BTreeMap<String, JobEntry>,
    queue: AdmissionQueue,
    counter: u64,
    /// Jobs currently on a worker, keyed by job ID.
    running: BTreeMap<String, RunningJob>,
}

/// How one dispatch of a job ended.
enum JobOutcome {
    Done(JobSummary),
    /// The job yielded to a cooperative preempt at a cell boundary; its
    /// journal is the checkpoint and it returns to the queue.
    Preempted,
    Failed(String),
}

/// The brownout ladder, derived from queue depth against capacity only
/// (counters and queue state — never wall-clock):
///
/// | tier | trigger (queued/capacity) | degradation |
/// |---|---|---|
/// | 0 | < 25 % | none |
/// | 1 | ≥ 25 % | keep-alive disabled: every response closes |
/// | 2 | ≥ 50 % | snapshot/report endpoints answer from last persisted state; long-polls answer immediately |
/// | 3 | = 100 % | new submissions shed (the existing typed 429) |
///
/// Each tier includes the degradations of the tiers below it, so the
/// daemon sheds optional work first and paying work last.
fn brownout_tier(queued: usize, capacity: usize) -> u8 {
    let capacity = capacity.max(1);
    if queued >= capacity {
        3
    } else if queued * 2 >= capacity {
        2
    } else if queued * 4 >= capacity {
        1
    } else {
        0
    }
}

/// The shared daemon state. Cheap to clone behind an [`Arc`]; the
/// worker pool, the accept loop, and every connection handler hold one.
pub struct Daemon {
    cfg: DaemonConfig,
    inner: Mutex<Inner>,
    cv: Condvar,
    metrics: Mutex<Metrics>,
    draining: AtomicBool,
    /// Current brownout tier (see [`brownout_tier`]), updated whenever
    /// queue depth changes so connection handlers read it lock-free.
    brownout: AtomicUsize,
}

impl Daemon {
    /// Creates the daemon over `cfg.state_dir`, creating the directory
    /// and restoring every journaled job found in it: done/failed jobs
    /// load as records, unfinished ones re-queue for resume in
    /// submission order, and the submission counter continues past the
    /// highest restored value (so new job IDs never collide).
    pub fn new(cfg: DaemonConfig) -> std::io::Result<Arc<Daemon>> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let mut inner = Inner {
            entries: BTreeMap::new(),
            queue: AdmissionQueue::new(cfg.queue.clone()),
            counter: 0,
            running: BTreeMap::new(),
        };
        let mut metrics = Metrics::new();

        // Tombstones first: a pruned job must never be resurrected,
        // even when a crash between tombstone-write and file-deletion
        // left its spec behind. The tombstone also carries the pruned
        // job's submission number, so the counter continues past it and
        // new IDs never collide with GC'd history.
        let mut tombstoned: BTreeSet<String> = BTreeSet::new();
        if let Ok(text) = std::fs::read_to_string(cfg.state_dir.join("gc.tombstones")) {
            for rec in &journal::from_text_lossy(&text).records {
                let Some(id) = rec.meta.strip_prefix("gc ") else {
                    continue;
                };
                tombstoned.insert(id.to_string());
                for line in rec.payload.lines() {
                    if let Some(v) = line.strip_prefix("submitted ") {
                        inner.counter = inner.counter.max(v.parse().unwrap_or(0));
                    }
                }
            }
        }

        let mut restored: Vec<(u64, String, String, u8)> = Vec::new(); // (submitted, id, tenant, priority)
        for entry in std::fs::read_dir(&cfg.state_dir)? {
            let name = entry?.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("job-"))
                .and_then(|n| n.strip_suffix(".spec"))
            else {
                continue;
            };
            let id = id.to_string();
            if tombstoned.contains(&id) {
                continue; // leftovers swept below
            }
            let text = std::fs::read_to_string(cfg.state_dir.join(&*name))?;
            let mut submitted = 0u64;
            let mut spec_lines = String::new();
            for line in text.lines() {
                if let Some(v) = line.strip_prefix("submitted ") {
                    submitted = v.parse().unwrap_or(0);
                } else {
                    spec_lines.push_str(line);
                    spec_lines.push('\n');
                }
            }
            let spec = match JobSpec::parse(&spec_lines) {
                Ok(s) => s,
                Err(e) => {
                    // A spec this daemon once accepted no longer parses
                    // (config drift): record the failure, don't crash.
                    metrics.inc("aprofd.jobs.unloadable");
                    inner.entries.insert(
                        id,
                        JobEntry {
                            spec: JobSpec::default(),
                            submitted,
                            state: JobState::Failed(format!("unloadable spec: {e}")),
                            resumed: true,
                            summary: None,
                        },
                    );
                    continue;
                }
            };
            inner.counter = inner.counter.max(submitted);
            let done = cfg.state_dir.join(format!("job-{id}.done"));
            let failed = cfg.state_dir.join(format!("job-{id}.failed"));
            let (state, summary) = if let Ok(t) = std::fs::read_to_string(&done) {
                (JobState::Done, Some(JobSummary::parse(&t)))
            } else if let Ok(t) = std::fs::read_to_string(&failed) {
                (JobState::Failed(t.trim().to_string()), None)
            } else {
                restored.push((submitted, id.clone(), spec.tenant.clone(), spec.priority));
                (JobState::Queued, None)
            };
            inner.entries.insert(
                id,
                JobEntry {
                    spec,
                    submitted,
                    state,
                    resumed: true,
                    summary,
                },
            );
        }
        // Re-queue unfinished jobs in their original submission order,
        // bypassing admission caps (they were admitted pre-crash).
        restored.sort();
        for (_, id, tenant, priority) in restored {
            inner.queue.restore(&tenant, &id, priority);
            metrics.inc("aprofd.jobs.restored");
        }
        metrics.set_gauge("aprofd.queue.depth", inner.queue.queued() as u64);
        let tier = brownout_tier(inner.queue.queued(), inner.queue.capacity());
        metrics.set_gauge("aprofd.brownout.tier", tier as u64);

        // Sweep leftovers of tombstoned jobs (the crash window between
        // tombstone-write and deletion).
        for id in &tombstoned {
            if remove_job_files(&cfg.state_dir, id) {
                metrics.inc("aprofd.jobs.gc_swept");
            }
        }

        let daemon = Arc::new(Daemon {
            cfg,
            brownout: AtomicUsize::new(tier as usize),
            inner: Mutex::new(inner),
            cv: Condvar::new(),
            metrics: Mutex::new(metrics),
            draining: AtomicBool::new(false),
        });
        daemon.gc();
        Ok(daemon)
    }

    /// The current brownout tier (see [`brownout_tier`]); lock-free so
    /// every connection handler can consult it per response.
    pub fn current_brownout(&self) -> u8 {
        self.brownout.load(Ordering::SeqCst) as u8
    }

    fn job_path(&self, id: &str, suffix: &str) -> PathBuf {
        self.cfg.state_dir.join(format!("job-{id}.{suffix}"))
    }

    /// Retention GC: prunes finished (done/failed) jobs beyond
    /// [`DaemonConfig::retain_count`] or older than
    /// [`DaemonConfig::retain_age`]. Runs at startup and after every
    /// job completion; a no-op when neither bound is set.
    ///
    /// Prune order is append-then-delete: the job's ID and submission
    /// number land (fsynced) in the `gc.tombstones` journal *before*
    /// any file is removed, so a crash mid-prune can only leave
    /// tombstoned leftovers the next startup sweeps — never a
    /// resurrected job. If the tombstone itself cannot be made durable
    /// (disk full), nothing is deleted.
    pub fn gc(&self) -> usize {
        if self.cfg.retain_count.is_none() && self.cfg.retain_age.is_none() {
            return 0;
        }
        // Pick victims under the lock; finished jobs cannot change
        // state, so acting on the snapshot afterwards is safe.
        let mut finished: Vec<(u64, String)> = {
            let inner = self.inner.lock().unwrap();
            inner
                .entries
                .iter()
                .filter(|(_, e)| matches!(e.state, JobState::Done | JobState::Failed(_)))
                .map(|(id, e)| (e.submitted, id.clone()))
                .collect()
        };
        finished.sort();
        let mut victims: BTreeSet<String> = BTreeSet::new();
        if let Some(keep) = self.cfg.retain_count {
            for (_, id) in finished.iter().take(finished.len().saturating_sub(keep)) {
                victims.insert(id.clone());
            }
        }
        if let Some(age) = self.cfg.retain_age {
            let now = SystemTime::now();
            for (_, id) in &finished {
                let marker = ["done", "failed"]
                    .iter()
                    .map(|s| self.job_path(id, s))
                    .find(|p| p.exists());
                let Some(mtime) = marker.and_then(|p| std::fs::metadata(p).ok()?.modified().ok())
                else {
                    continue;
                };
                if now.duration_since(mtime).is_ok_and(|d| d >= age) {
                    victims.insert(id.clone());
                }
            }
        }
        if victims.is_empty() {
            return 0;
        }
        let path = self.cfg.state_dir.join("gc.tombstones");
        let io = &self.cfg.host_io;
        let writer = if path.exists() {
            JournalWriter::append_to_with(io, &path)
        } else {
            JournalWriter::create_with(io, &path)
        };
        let mut writer = match writer {
            Ok(w) => w,
            Err(e) => {
                eprintln!("aprofd: gc skipped, tombstone journal unusable: {e}");
                return 0;
            }
        };
        let submitted_of: BTreeMap<&String, u64> =
            finished.iter().map(|(n, id)| (id, *n)).collect();
        let mut pruned = 0usize;
        for id in &victims {
            writer.append(
                &format!("gc {id}"),
                &format!("submitted {}\n", submitted_of.get(id).copied().unwrap_or(0)),
            );
            if !writer.is_active() {
                // The tombstone did not reach the disk: stop pruning
                // entirely rather than delete undurably-tombstoned jobs.
                eprintln!("aprofd: gc stopped, tombstone append failed");
                break;
            }
            remove_job_files(&self.cfg.state_dir, id);
            self.inner.lock().unwrap().entries.remove(id);
            pruned += 1;
        }
        if pruned > 0 {
            self.metrics
                .lock()
                .unwrap()
                .add("aprofd.jobs.gc_pruned", pruned as u64);
        }
        pruned
    }

    /// Begins the graceful drain: submissions are refused with a typed
    /// 503, running jobs finish, queued jobs stay durable on disk for
    /// the next start. Idempotent.
    pub fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            self.metrics.lock().unwrap().inc("aprofd.drains");
        }
        self.cv.notify_all();
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Whether the drain has finished (no job mid-run). Queued jobs do
    /// not block exit — their specs are durable and the next start
    /// resumes them. Running jobs complete normally (their artifacts
    /// are moments away); preemption is for scheduling, not shutdown.
    pub fn drain_complete(&self) -> bool {
        self.is_draining() && self.inner.lock().unwrap().running.is_empty()
    }

    /// Spawns the worker pool (`cfg.workers` threads).
    pub fn spawn_workers(self: &Arc<Self>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.cfg.workers)
            .map(|_| {
                let d = Arc::clone(self);
                std::thread::spawn(move || d.worker_loop())
            })
            .collect()
    }

    fn worker_loop(&self) {
        loop {
            let popped = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if let Some(d) = inner.queue.pop_fair() {
                        let signal = PreemptSignal::new();
                        inner.running.insert(
                            d.job.clone(),
                            RunningJob {
                                priority: d.priority,
                                signal: signal.clone(),
                            },
                        );
                        if let Some(e) = inner.entries.get_mut(&d.job) {
                            e.state = JobState::Running;
                        }
                        break Some((d, signal));
                    }
                    if self.is_draining() {
                        break None;
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(inner, Duration::from_millis(100))
                        .unwrap();
                    inner = guard;
                }
            };
            let Some((dispatch, signal)) = popped else {
                return;
            };
            self.publish_depth();
            // A panicking job (a supervisor bug — guest panics are
            // already caught per-cell) must not take the worker thread
            // with it: catch it, fail the job, keep the pool at
            // `cfg.workers`.
            let outcome = catch_unwind(AssertUnwindSafe(|| self.run_job(&dispatch.job, &signal)))
                .unwrap_or_else(|p| {
                    self.metrics
                        .lock()
                        .unwrap()
                        .inc("aprofd.jobs.worker_panics");
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".to_string());
                    JobOutcome::Failed(self.fail_job(&dispatch.job, format!("panic: {msg}")))
                });
            let preempted = matches!(outcome, JobOutcome::Preempted);
            {
                let mut inner = self.inner.lock().unwrap();
                inner.queue.finished(&dispatch.tenant);
                inner.running.remove(&dispatch.job);
                match outcome {
                    JobOutcome::Done(summary) => {
                        if let Some(e) = inner.entries.get_mut(&dispatch.job) {
                            e.state = JobState::Done;
                            e.summary = Some(summary);
                        }
                    }
                    JobOutcome::Failed(msg) => {
                        if let Some(e) = inner.entries.get_mut(&dispatch.job) {
                            e.state = JobState::Failed(msg);
                        }
                    }
                    JobOutcome::Preempted => {
                        // Back to the queue at its base priority; the
                        // fsync'd journal is the checkpoint the next
                        // dispatch resumes from. `restore` bypasses the
                        // admission caps — the job was admitted once.
                        if let Some(e) = inner.entries.get_mut(&dispatch.job) {
                            e.state = JobState::Queued;
                        }
                        inner
                            .queue
                            .restore(&dispatch.tenant, &dispatch.job, dispatch.priority);
                    }
                }
            }
            let mut m = self.metrics.lock().unwrap();
            if preempted {
                m.inc("aprofd.jobs.preempted");
            } else {
                m.inc("aprofd.jobs.finished");
            }
            drop(m);
            self.gc();
            self.publish_depth();
            self.cv.notify_all();
        }
    }

    /// Raises the preempt signal of the lowest-priority running job iff
    /// every worker is busy and that job's priority is strictly below
    /// `incoming` — called under no lock after a successful admission.
    /// Victim choice is deterministic: minimum (base priority, job ID),
    /// skipping jobs already signaled. The victim yields at its next
    /// grid-cell boundary; cells in flight finish and journal first.
    fn maybe_preempt(&self, incoming: u8) {
        let workers = self.cfg.workers;
        if workers == 0 {
            return;
        }
        let inner = self.inner.lock().unwrap();
        if inner.running.len() < workers {
            return; // a free worker will pick the job up directly
        }
        let victim = inner
            .running
            .iter()
            .filter(|(_, r)| !r.signal.is_raised())
            .min_by_key(|(id, r)| (r.priority, (*id).clone()));
        if let Some((_id, r)) = victim {
            if r.priority < incoming {
                r.signal.raise();
                drop(inner);
                self.metrics
                    .lock()
                    .unwrap()
                    .inc("aprofd.jobs.preempt_signals");
            }
        }
    }

    /// Runs (or resumes) one job to its artifacts, or to a preemption
    /// yield. Every failure mode the sweep itself can absorb — panics,
    /// deadlines, budgets, transient faults — is already the
    /// supervisor's business; only setup-level failures (journal
    /// unusable, artifact I/O) fail the job, and those are recorded
    /// durably in the `.failed` marker. A yielded job writes nothing
    /// beyond its journal: the journal *is* the checkpoint.
    fn run_job(&self, id: &str, signal: &PreemptSignal) -> JobOutcome {
        let spec = {
            let inner = self.inner.lock().unwrap();
            match inner.entries.get(id) {
                Some(e) => e.spec.clone(),
                None => return JobOutcome::Failed("job vanished from the store".to_string()),
            }
        };
        let sweep_spec = spec.sweep_spec();
        let mut opts = spec.supervisor_options();
        opts.preempt = Some(signal.clone());
        if spec.trace_dir {
            // Shards are a job artifact: they live next to the journal
            // and report, survive restarts, and are removed with the
            // job (DELETE, tombstone sweep, retention GC).
            opts.trace_dir = Some(self.job_path(id, "shards"));
            opts.trace_io = self.cfg.host_io.clone();
        }
        let journal_path = self.job_path(id, "journal");

        let io = self.cfg.host_io.clone();

        let journal_bytes = std::fs::metadata(&journal_path)
            .map(|m| m.len())
            .unwrap_or(0);
        let (result, resumed) = if journal_bytes > 0 {
            match resume_sweep_preemptible_with_io(
                &sweep_spec,
                &opts,
                &journal_path,
                &profile_cell,
                &io,
            ) {
                Ok((run, report)) => {
                    let mut m = self.metrics.lock().unwrap();
                    m.inc("aprofd.jobs.resumed");
                    if let Err(e) = m.merge(&report.metrics) {
                        drop(m);
                        return JobOutcome::Failed(format!("resume metrics merge: {e}"));
                    }
                    drop(m);
                    // This dispatch picked up from the journal — a
                    // restart *or* a preemption checkpoint; the status
                    // line reports both the same way.
                    if let Some(e) = self.inner.lock().unwrap().entries.get_mut(id) {
                        e.resumed = true;
                    }
                    match run {
                        SupervisedRun::Completed(result) => (*result, true),
                        SupervisedRun::Yielded { .. } => return JobOutcome::Preempted,
                    }
                }
                Err(e) => {
                    let msg = render_error_chain(&e);
                    let _ = atomic_write_with(&io, &self.job_path(id, "failed"), &msg);
                    return JobOutcome::Failed(msg);
                }
            }
        } else {
            let mut writer = match JournalWriter::create_with(&io, &journal_path) {
                Ok(w) => w,
                Err(e) => {
                    return JobOutcome::Failed(self.fail_job(id, format!("journal create: {e}")))
                }
            };
            match run_supervised_preemptible(&sweep_spec, &opts, Some(&mut writer), &profile_cell) {
                SupervisedRun::Completed(result) => (*result, false),
                SupervisedRun::Yielded { .. } => return JobOutcome::Preempted,
            }
        };

        let summary = JobSummary {
            attempts: result.attempts(),
            retries: result.retries(),
            quarantined: result.quarantined.len() as u64,
            cells: result.cells.len() as u64,
            fingerprint: result.fingerprint(),
        };
        let report_text = result.merged_report_text();
        let metrics_json = result.merged_metrics().to_json();
        let bench = SweepBench {
            jobs: spec.jobs,
            resumed,
            families: vec![FamilyBench::from_resumed(result)],
        };
        let write = |suffix: &str, contents: &str| {
            atomic_write_with(&io, &self.job_path(id, suffix), contents)
                .map_err(|e| self.fail_job(id, format!("artifact `{suffix}`: {e}")))
        };
        let wrote = write("bench.json", &bench.to_json())
            .and_then(|()| write("report.txt", &report_text))
            .and_then(|()| write("metrics.json", &metrics_json))
            .and_then(|()| write("done", &summary.to_text()));
        match wrote {
            Ok(()) => JobOutcome::Done(summary),
            Err(msg) => JobOutcome::Failed(msg),
        }
    }

    /// Records a job failure durably and returns the message (for use
    /// as the in-memory state). Best-effort on purpose: the failure may
    /// *be* a full disk, and the partial outcome is already flushed in
    /// the journal — the in-memory state and restart-resume both carry
    /// the job regardless.
    fn fail_job(&self, id: &str, msg: String) -> String {
        let _ = atomic_write_with(&self.cfg.host_io, &self.job_path(id, "failed"), &msg);
        msg
    }

    fn publish_depth(&self) {
        let (queued, running, capacity) = {
            let inner = self.inner.lock().unwrap();
            (
                inner.queue.queued(),
                inner.running.len(),
                inner.queue.capacity(),
            )
        };
        let tier = brownout_tier(queued, capacity);
        let prev = self.brownout.swap(tier as usize, Ordering::SeqCst) as u8;
        let mut m = self.metrics.lock().unwrap();
        m.set_gauge("aprofd.queue.depth", queued as u64);
        m.set_gauge("aprofd.jobs.running", running as u64);
        m.set_gauge("aprofd.brownout.tier", tier as u64);
        if prev != tier {
            m.inc("aprofd.brownout.transitions");
        }
    }

    // ------------------------------------------------------------------
    // Endpoints
    // ------------------------------------------------------------------

    /// Routes one request. Pure with respect to the connection — tests
    /// call this directly without a socket.
    pub fn handle(&self, req: &Request) -> Response {
        self.metrics.lock().unwrap().inc("aprofd.http.requests");
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/metrics") => Response::ok(self.metrics.lock().unwrap().to_prometheus()),
            ("GET", "/debug/panic") if self.cfg.debug_endpoints => {
                panic!("debug: handler panic requested")
            }
            ("POST", "/jobs") => self.submit(&req.body),
            ("POST", "/shutdown") => {
                self.begin_drain();
                Response::ok("draining\n")
            }
            ("GET", path) => {
                if let Some(rest) = path.strip_prefix("/jobs/") {
                    match rest.split_once('/') {
                        None => self.job_status(rest),
                        Some((id, "report")) => self.job_report(id, req.query_u64("since")),
                        Some((id, "events")) => self.job_events(id, req.query_u64("since")),
                        Some((id, "metrics")) => self.job_metrics(id),
                        Some(_) => Response::text(404, "not found\n"),
                    }
                } else {
                    Response::text(404, "not found\n")
                }
            }
            _ => Response::text(404, "not found\n"),
        }
    }

    fn healthz(&self) -> Response {
        let inner = self.inner.lock().unwrap();
        let done = inner
            .entries
            .values()
            .filter(|e| e.state == JobState::Done)
            .count();
        Response::ok(format!(
            "ok\nqueued {}\nrunning {}\ndone {}\njobs {}\ndraining {}\nbrownout {}\n",
            inner.queue.queued(),
            inner.running.len(),
            done,
            inner.entries.len(),
            self.is_draining() as u8,
            self.current_brownout(),
        ))
    }

    /// Admission: parse → validate → durably persist the spec → queue.
    /// The bounded queue makes the refusal typed and explicit; nothing
    /// about a shed submission is retained.
    fn submit(&self, body: &str) -> Response {
        if self.is_draining() {
            self.metrics
                .lock()
                .unwrap()
                .inc("aprofd.jobs.refused_draining");
            return Response::shed(503, 1000, "draining: submissions refused; retry later\n");
        }
        let spec = match JobSpec::parse(body) {
            Ok(s) => s,
            Err(e) => {
                self.metrics
                    .lock()
                    .unwrap()
                    .inc("aprofd.jobs.rejected_spec");
                return Response::text(400, format!("rejected: {e}\n"));
            }
        };
        let (id, decision) = {
            let mut inner = self.inner.lock().unwrap();
            let submitted = inner.counter + 1;
            let id = job_id(&spec, submitted);
            let decision = inner.queue.offer(&spec.tenant, &id, spec.priority);
            if decision == Admission::Queued {
                // Durability point: acknowledge only after the spec is
                // atomically on disk. Failure to persist is a typed
                // disk-full shed: the queue slot is withdrawn and the
                // counter stays put, so the retried submission mints
                // the *same* deterministic ID once space returns.
                let spec_text = format!("{}submitted {submitted}\n", spec.canonical_text());
                if let Err(e) =
                    atomic_write_with(&self.cfg.host_io, &self.job_path(&id, "spec"), &spec_text)
                {
                    inner.queue.cancel(&spec.tenant, &id);
                    drop(inner);
                    self.metrics
                        .lock()
                        .unwrap()
                        .inc("aprofd.jobs.shed_disk_full");
                    self.publish_depth();
                    return Response::shed(
                        507,
                        DISK_FULL_RETRY_MS,
                        format!(
                            "shed: state disk unavailable ({e}); retry after {DISK_FULL_RETRY_MS} ms\n"
                        ),
                    );
                }
                inner.counter = submitted;
                inner.entries.insert(
                    id.clone(),
                    JobEntry {
                        spec: spec.clone(),
                        submitted,
                        state: JobState::Queued,
                        resumed: false,
                        summary: None,
                    },
                );
            }
            (id, decision)
        };
        let mut m = self.metrics.lock().unwrap();
        match decision {
            Admission::Queued => {
                m.inc("aprofd.jobs.submitted");
                drop(m);
                self.publish_depth();
                self.cv.notify_all();
                self.maybe_preempt(spec.priority);
                Response::ok(format!("{id}\n"))
            }
            Admission::ShedFull {
                queued,
                retry_after_ms,
            } => {
                m.inc("aprofd.jobs.shed_full");
                Response::shed(
                    429,
                    retry_after_ms,
                    format!(
                        "shed: queue full ({queued} queued); retry after {retry_after_ms} ms\n"
                    ),
                )
            }
            Admission::ShedTenant {
                queued,
                retry_after_ms,
            } => {
                m.inc("aprofd.jobs.shed_tenant");
                Response::shed(
                    429,
                    retry_after_ms,
                    format!(
                        "shed: tenant quota exhausted ({queued} queued); retry after {retry_after_ms} ms\n"
                    ),
                )
            }
        }
    }

    fn job_status(&self, id: &str) -> Response {
        let inner = self.inner.lock().unwrap();
        let Some(e) = inner.entries.get(id) else {
            return Response::text(404, format!("no such job `{id}`\n"));
        };
        let total = e.spec.grid_len();
        let mut out = String::new();
        let _ = writeln!(out, "id {id}");
        let _ = writeln!(out, "tenant {}", e.spec.tenant);
        let _ = writeln!(out, "family {}", e.spec.family);
        let _ = writeln!(out, "state {}", e.state.as_str());
        let _ = writeln!(out, "priority {}", e.spec.priority);
        let _ = writeln!(out, "submitted {}", e.submitted);
        let _ = writeln!(out, "resumed {}", e.resumed as u8);
        match (&e.state, &e.summary) {
            (JobState::Done, Some(s)) => {
                let _ = writeln!(out, "cells {}/{total}", s.cells);
                let _ = writeln!(out, "attempts {}", s.attempts);
                let _ = writeln!(out, "retries {}", s.retries);
                let _ = writeln!(out, "quarantined {}", s.quarantined);
                let _ = writeln!(out, "fingerprint {:016x}", s.fingerprint);
            }
            (JobState::Failed(msg), _) => {
                let _ = writeln!(out, "error {}", msg.replace('\n', " "));
            }
            _ => {
                // Live accounting straight from the journal: cells land
                // there (fsynced) the moment they finish.
                drop(inner);
                let (cells, attempts, quarantined) = self.live_accounting(id);
                let _ = writeln!(out, "cells {cells}/{total}");
                let _ = writeln!(out, "attempts {attempts}");
                let _ = writeln!(out, "quarantined {quarantined}");
            }
        }
        Response::ok(out)
    }

    /// Salvages the job's journal (tolerating the torn tail of a live
    /// append) and decodes its completed cells in record order.
    fn live_cells(&self, id: &str) -> Vec<(usize, SweepCell)> {
        let Ok(text) = std::fs::read_to_string(self.job_path(id, "journal")) else {
            return Vec::new();
        };
        let salvaged = journal::from_text_lossy(&text);
        let mut cells = Vec::new();
        for rec in &salvaged.records {
            let mut tok = rec.meta.split(' ');
            if tok.next() != Some("cell") {
                continue;
            }
            let (Some(_family), Some(idx), Some("ok")) = (tok.next(), tok.next(), tok.next())
            else {
                continue;
            };
            let Ok(idx) = idx.parse::<usize>() else {
                continue;
            };
            if let Ok(cell) = decode_cell_payload(&rec.payload) {
                cells.push((idx, cell));
            }
        }
        cells
    }

    fn live_accounting(&self, id: &str) -> (usize, u64, usize) {
        let Ok(text) = std::fs::read_to_string(self.job_path(id, "journal")) else {
            return (0, 0, 0);
        };
        let salvaged = journal::from_text_lossy(&text);
        let mut cells = 0usize;
        let mut quarantined = 0usize;
        let mut attempts = 0u64;
        for rec in &salvaged.records {
            if !rec.meta.starts_with("cell ") {
                continue;
            }
            if rec.meta.ends_with(" ok") {
                cells += 1;
                if let Ok(c) = decode_cell_payload(&rec.payload) {
                    attempts += c.attempts as u64;
                }
            } else if rec.meta.ends_with(" quarantined") {
                quarantined += 1;
            }
        }
        (cells, attempts, quarantined)
    }

    /// Snapshot (`/jobs/{id}/report`) and delta
    /// (`/jobs/{id}/report?since=N`) rendering of a live run, straight
    /// from the journal. Done jobs serve their final artifact.
    fn job_report(&self, id: &str, since: Option<u64>) -> Response {
        let (state, family, total) = {
            let inner = self.inner.lock().unwrap();
            let Some(e) = inner.entries.get(id) else {
                return Response::text(404, format!("no such job `{id}`\n"));
            };
            (e.state.clone(), e.spec.family.clone(), e.spec.grid_len())
        };
        if since.is_none() && state == JobState::Done {
            return match std::fs::read_to_string(self.job_path(id, "report.txt")) {
                Ok(text) => Response::ok(text),
                Err(e) => Response::text(500, format!("artifact unreadable: {e}\n")),
            };
        }
        // Brownout tier ≥ 2: answer snapshots from the last persisted
        // state instead of re-reading and re-fitting the live journal —
        // the journal salvage + drms fit below is the expensive part of
        // this endpoint, and under queue pressure the cycles belong to
        // the sweeps.
        if since.is_none() && self.current_brownout() >= 2 {
            return Response::ok(format!(
                "brownout {}: live snapshot degraded; state {}\n",
                self.current_brownout(),
                state.as_str(),
            ));
        }
        let cells = self.live_cells(id);
        let mut out = String::new();
        let _ = writeln!(out, "cursor {}", cells.len());
        let skip = since.unwrap_or(0) as usize;
        for (idx, cell) in cells.iter().skip(skip) {
            let _ = writeln!(
                out,
                "cell {idx} size {} seed {} attempts {} shadow_bytes {}",
                cell.size, cell.seed, cell.attempts, cell.shadow_bytes
            );
        }
        if since.is_none() {
            // Full snapshot: the partial drms plot of the family's focus
            // routine (worst-case cost per input, mirroring
            // `SweepResult::focus_plot`) plus the current fit,
            // re-rendered on every poll as the model converges.
            let mut worst: BTreeMap<u64, u64> = BTreeMap::new();
            if let Some(focus) = family_workload(&family, 1).and_then(|w| w.focus) {
                for (_, cell) in &cells {
                    let profile = cell.report.merged_routine(focus);
                    for (input, cost) in CostPlot::of(&profile, InputMetric::Drms).points {
                        let e = worst.entry(input).or_insert(cost);
                        *e = (*e).max(cost);
                    }
                }
            }
            let points: Vec<(u64, u64)> = worst.into_iter().collect();
            out.push_str(&sweep_snapshot(&family, &points, cells.len(), total));
        }
        Response::ok(out)
    }

    /// The `/jobs/{id}/events?since=N` long-poll: blocks (in bounded
    /// [`POLL_STEP`] sleeps, up to [`DaemonConfig::poll_timeout`]) until
    /// the job's journal has a cell the caller has not seen, the job
    /// reaches a terminal state, the daemon drains, or brownout tier
    /// ≥ 2 forces an immediate answer — then renders the delta:
    ///
    /// ```text
    /// cursor <total cells journaled>
    /// state <queued|running|done|failed>
    /// cell <idx> size <s> seed <s> attempts <n> shadow_bytes <b>   (per new cell)
    /// ```
    ///
    /// `aprofctl watch` drives this in a loop, feeding each answer's
    /// `cursor` back as the next `since`.
    fn job_events(&self, id: &str, since: Option<u64>) -> Response {
        let since = since.unwrap_or(0) as usize;
        let steps = (self.cfg.poll_timeout.as_millis() / POLL_STEP.as_millis()).max(1) as u64;
        for step in 0u64.. {
            let state = {
                let inner = self.inner.lock().unwrap();
                match inner.entries.get(id) {
                    Some(e) => e.state.clone(),
                    None => return Response::text(404, format!("no such job `{id}`\n")),
                }
            };
            let terminal = matches!(state, JobState::Done | JobState::Failed(_));
            let cells = self.live_cells(id);
            let expired = step + 1 >= steps;
            if cells.len() > since
                || terminal
                || expired
                || self.is_draining()
                || self.current_brownout() >= 2
            {
                let mut out = String::new();
                let _ = writeln!(out, "cursor {}", cells.len());
                let _ = writeln!(out, "state {}", state.as_str());
                for (idx, cell) in cells.iter().skip(since) {
                    let _ = writeln!(
                        out,
                        "cell {idx} size {} seed {} attempts {} shadow_bytes {}",
                        cell.size, cell.seed, cell.attempts, cell.shadow_bytes
                    );
                }
                return Response::ok(out);
            }
            std::thread::sleep(POLL_STEP);
        }
        unreachable!("the poll loop always answers by its last step")
    }

    /// Streams the job's merged metrics as Prometheus text, rebuilt
    /// from the journal so live and finished jobs share one code path.
    /// A bucket-layout mismatch between cells surfaces as the typed
    /// [`drms::Error::Metrics`] chain, not a panic.
    fn job_metrics(&self, id: &str) -> Response {
        if !self.inner.lock().unwrap().entries.contains_key(id) {
            return Response::text(404, format!("no such job `{id}`\n"));
        }
        let mut merged = Metrics::new();
        for (_, cell) in self.live_cells(id) {
            if let Err(e) = merged.merge(&cell.metrics) {
                let err = drms::Error::from(e);
                return Response::text(500, render_error_chain(&err));
            }
        }
        Response::ok(merged.to_prometheus())
    }
}

/// Removes every `job-<id>.*` file. Returns whether anything existed.
fn remove_job_files(state_dir: &std::path::Path, id: &str) -> bool {
    let mut removed = false;
    for suffix in [
        "spec",
        "journal",
        "bench.json",
        "report.txt",
        "metrics.json",
        "done",
        "failed",
    ] {
        let path = state_dir.join(format!("job-{id}.{suffix}"));
        if std::fs::remove_file(path).is_ok() {
            removed = true;
        }
    }
    // The trace-shard spill directory (`trace_dir on` jobs).
    if std::fs::remove_dir_all(state_dir.join(format!("job-{id}.shards"))).is_ok() {
        removed = true;
    }
    removed
}

/// Renders an error with its `source()` chain, one frame per line.
fn render_error_chain(err: &dyn std::error::Error) -> String {
    let mut out = format!("{err}\n");
    let mut src = err.source();
    while let Some(e) = src {
        let _ = writeln!(out, "  caused by: {e}");
        src = e.source();
    }
    out
}

/// Frees one connection slot on drop — however the handler exits,
/// including a panic unwinding through it, the `max_connections`
/// accounting stays correct.
struct SlotGuard(Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The bounded accept queue feeding the io-thread pool. `slots` counts
/// queued + in-flight connections against `max_connections`.
struct AcceptQueue {
    queue: Mutex<VecDeque<(TcpStream, SlotGuard)>>,
    cv: Condvar,
    stop: AtomicBool,
}

/// Serves `daemon` on `listener` until the drain completes: a fixed
/// pool of [`DaemonConfig::io_threads`] connection handlers consumes a
/// bounded accept queue — total admitted connections (queued plus
/// in-flight) are capped at [`DaemonConfig::max_connections`]; excess
/// connections get an immediate 503 shed at the door instead of an
/// unbounded thread per socket. Refuses new submissions while draining
/// and returns once no job is mid-run, after joining the io pool. Both
/// the `aprofd` binary and the in-process tests run this.
pub fn serve(daemon: Arc<Daemon>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let slots = Arc::new(AtomicUsize::new(0));
    let max_connections = daemon.cfg.max_connections.max(1);
    let accept = Arc::new(AcceptQueue {
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        stop: AtomicBool::new(false),
    });
    let io_pool: Vec<_> = (0..daemon.cfg.io_threads.max(1))
        .map(|_| {
            let d = Arc::clone(&daemon);
            let q = Arc::clone(&accept);
            std::thread::spawn(move || io_thread_loop(&d, &q))
        })
        .collect();
    let result = loop {
        if daemon.drain_complete() {
            break Ok(());
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Reserve a slot before queueing; the guard travels
                // with the stream and frees it wherever the connection
                // ends (drained, handled, or handler panic).
                if slots.fetch_add(1, Ordering::SeqCst) >= max_connections {
                    slots.fetch_sub(1, Ordering::SeqCst);
                    // Shed at the door: a deterministic 503 beats an
                    // unbounded pile-up. The hint is short — the cap
                    // clears as fast as one request round-trips.
                    daemon
                        .metrics
                        .lock()
                        .unwrap()
                        .inc("aprofd.http.conn_refused");
                    let _ = stream.set_write_timeout(Some(daemon.cfg.read_timeout));
                    let _ = crate::http::write_response(
                        &mut stream,
                        &Response::shed(503, 250, "busy: connection limit reached; retry\n"),
                        false,
                    );
                    continue;
                }
                let guard = SlotGuard(Arc::clone(&slots));
                let mut q = accept.queue.lock().unwrap();
                q.push_back((stream, guard));
                drop(q);
                accept.cv.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => break Err(e),
        }
    };
    // Stop the pool: unserved queued connections drop (their guards
    // free the slots) and each io thread exits at its next wakeup.
    accept.stop.store(true, Ordering::SeqCst);
    accept.queue.lock().unwrap().clear();
    accept.cv.notify_all();
    for t in io_pool {
        let _ = t.join();
    }
    result
}

/// One io-thread: pops connections off the accept queue and handles
/// each to completion. A handler panic is caught here — the thread
/// survives, the counter records it, and the connection's slot guard
/// drops either way.
fn io_thread_loop(daemon: &Daemon, accept: &AcceptQueue) {
    loop {
        let popped = {
            let mut q = accept.queue.lock().unwrap();
            loop {
                if let Some(conn) = q.pop_front() {
                    break Some(conn);
                }
                if accept.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = accept
                    .cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap();
                q = guard;
            }
        };
        let Some((stream, _slot)) = popped else {
            return;
        };
        if catch_unwind(AssertUnwindSafe(|| handle_connection(daemon, stream))).is_err() {
            daemon
                .metrics
                .lock()
                .unwrap()
                .inc("aprofd.http.handler_panics");
        }
        // `_slot` drops here: the connection slot is returned even when
        // the handler panicked.
    }
}

fn handle_connection(daemon: &Daemon, stream: TcpStream) {
    let deadline = daemon.cfg.read_timeout;
    let _ = stream.set_read_timeout(Some(deadline));
    let _ = stream.set_write_timeout(Some(deadline));
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = std::io::BufReader::new(stream);
    // Keep-alive loop: serve requests off one connection until the
    // client asks to close, the per-connection cap is reached, the
    // idle deadline expires, an error ends the framing, or the daemon
    // is draining / browned out (tier ≥ 1 disables keep-alive).
    for served in 0..MAX_REQUESTS_PER_CONN {
        let response = match crate::http::read_request(&mut reader) {
            Ok(req) => {
                let resp = daemon.handle(&req);
                let keep_alive = !req.close
                    && served + 1 < MAX_REQUESTS_PER_CONN
                    && !daemon.is_draining()
                    && daemon.current_brownout() < 1;
                if crate::http::write_response(&mut write_half, &resp, keep_alive).is_err()
                    || !keep_alive
                {
                    return;
                }
                continue;
            }
            Err(e @ RequestError::TooLarge(_)) => {
                daemon.metrics.lock().unwrap().inc("aprofd.http.too_large");
                Response::text(413, format!("{e}\n"))
            }
            Err(e @ RequestError::Malformed(_)) => Response::text(400, format!("{e}\n")),
            Err(RequestError::Timeout) => {
                if served > 0 {
                    // Keep-alive idle deadline: the client simply had no
                    // next request within `read_timeout`. Close quietly —
                    // this is the protocol working, not a slow loris.
                    daemon
                        .metrics
                        .lock()
                        .unwrap()
                        .inc("aprofd.http.idle_closed");
                    return;
                }
                // Slow loris: the read deadline expired mid-request.
                // Answer typed (best-effort — the peer may be gone) and
                // close; the io thread is freed either way.
                daemon.metrics.lock().unwrap().inc("aprofd.http.timeouts");
                Response::text(408, "request read deadline expired\n")
            }
            Err(RequestError::Closed | RequestError::Io(_)) => return, // nothing to answer
        };
        // Error responses always end the connection: the request
        // framing is unreliable past this point.
        let _ = crate::http::write_response(&mut write_half, &response, false);
        return;
    }
}
