//! `drms-aprofd` — a crash-safe multi-tenant profiling service.
//!
//! The library behind the `aprofd` daemon and the `aprofctl` client:
//! tenants submit sweep jobs over a tiny dependency-free HTTP surface,
//! and every job runs through the workspace's crash-safe supervisor
//! ([`drms_bench::supervisor`]) with its checkpoint journal, panic
//! isolation, deadlines, and deterministic retry/backoff.
//!
//! The service adds the *operational* half the supervisor leaves open:
//!
//! - **Admission control** ([`queue`]): a bounded queue with a global
//!   capacity and per-tenant quotas. A full queue *sheds* the
//!   submission with a typed refusal and a deterministic retry-after —
//!   it never grows unbounded and never silently drops work.
//! - **Priorities and preemption**: each job carries a `priority`
//!   band (0..=9); dispatch picks the highest effective band first,
//!   round-robin across tenants within a band, with counter-driven
//!   aging so low bands never starve. When every worker is busy and a
//!   higher-priority job arrives, the lowest-priority running job is
//!   signaled ([`drms_bench::supervisor::PreemptSignal`]) and yields
//!   at its next grid-cell boundary; its fsync'd journal *is* the
//!   checkpoint, and on re-dispatch the resume produces byte-identical
//!   artifacts.
//! - **Bounded worker pools**: `--workers` job executors and
//!   `--io-threads` connection handlers fed by a bounded accept queue —
//!   thread count is fixed at startup, and a panicking handler or job
//!   returns its slot (and bumps a counter) instead of leaking it.
//! - **Keep-alive HTTP with brownout**: persistent connections (capped
//!   per connection), degraded in deterministic tiers as the queue
//!   fills — keep-alive off, then snapshots answered from last
//!   persisted state, then new submissions shed.
//! - **Deterministic identity** ([`spec`]): job IDs are FNV-1a over the
//!   canonical spec plus a submission counter — no wall clock, no RNG —
//!   so a restarted daemon reproduces the same IDs, paths, and
//!   artifacts.
//! - **Crash safety** ([`daemon`]): the spec file is the durability
//!   point and the per-job journal the progress point. `kill -9` the
//!   daemon mid-grid, start it again, and every unfinished job resumes
//!   through [`drms_bench::supervisor::resume_sweep`] to byte-identical
//!   artifacts.
//! - **Graceful drain**: SIGTERM (or `POST /shutdown`) refuses new
//!   submissions, finishes running jobs, and leaves queued ones durable
//!   for the next start.
//! - **Live observability**: per-job status, snapshot/delta reports and
//!   merged metrics are rendered straight from the journal while the
//!   sweep is still running; the daemon's own registry streams as
//!   Prometheus text from `/metrics`.

pub mod client;
pub mod daemon;
pub mod http;
pub mod queue;
pub mod spec;

pub use client::{Client, ClientError};
pub use daemon::{serve, Daemon, DaemonConfig, JobState, JobSummary};
pub use http::{Conn, RequestError, MAX_REQUESTS_PER_CONN};
pub use queue::{Admission, AdmissionQueue, Dispatch, QueueConfig, MAX_PRIORITY};
pub use spec::{job_id, JobSpec, SpecError};
