//! `drms-aprofd` — a crash-safe multi-tenant profiling service.
//!
//! The library behind the `aprofd` daemon and the `aprofctl` client:
//! tenants submit sweep jobs over a tiny dependency-free HTTP surface,
//! and every job runs through the workspace's crash-safe supervisor
//! ([`drms_bench::supervisor`]) with its checkpoint journal, panic
//! isolation, deadlines, and deterministic retry/backoff.
//!
//! The service adds the *operational* half the supervisor leaves open:
//!
//! - **Admission control** ([`queue`]): a bounded queue with a global
//!   capacity and per-tenant quotas. A full queue *sheds* the
//!   submission with a typed refusal and a deterministic retry-after —
//!   it never grows unbounded and never silently drops work.
//! - **Fair dispatch**: round-robin across tenants with a per-tenant
//!   running cap, so one noisy tenant cannot starve the rest.
//! - **Deterministic identity** ([`spec`]): job IDs are FNV-1a over the
//!   canonical spec plus a submission counter — no wall clock, no RNG —
//!   so a restarted daemon reproduces the same IDs, paths, and
//!   artifacts.
//! - **Crash safety** ([`daemon`]): the spec file is the durability
//!   point and the per-job journal the progress point. `kill -9` the
//!   daemon mid-grid, start it again, and every unfinished job resumes
//!   through [`drms_bench::supervisor::resume_sweep`] to byte-identical
//!   artifacts.
//! - **Graceful drain**: SIGTERM (or `POST /shutdown`) refuses new
//!   submissions, finishes running jobs, and leaves queued ones durable
//!   for the next start.
//! - **Live observability**: per-job status, snapshot/delta reports and
//!   merged metrics are rendered straight from the journal while the
//!   sweep is still running; the daemon's own registry streams as
//!   Prometheus text from `/metrics`.

pub mod client;
pub mod daemon;
pub mod http;
pub mod queue;
pub mod spec;

pub use client::{Client, ClientError};
pub use daemon::{serve, Daemon, DaemonConfig, JobState, JobSummary};
pub use http::RequestError;
pub use queue::{Admission, AdmissionQueue, QueueConfig};
pub use spec::{job_id, JobSpec, SpecError};
