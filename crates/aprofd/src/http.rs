//! A deliberately tiny HTTP/1.1 subset over `std::net`.
//!
//! The workspace is dependency-free by design, so the daemon speaks
//! just enough HTTP for line tools and `curl`: one request per
//! connection (`Connection: close`), plain-text bodies, and a
//! `Content-Length` requirement both ways. Responses that shed load
//! carry the deterministic back-pressure hint in both the standard
//! `Retry-After` (whole seconds, rounded up) and the millisecond
//! `X-Retry-After-Ms` header the `aprofctl` client honors.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body: job specs are a few hundred bytes,
/// so anything near this bound is abuse, not a job.
pub const MAX_BODY: usize = 64 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (empty when absent).
    pub query: String,
    /// Request body (empty when absent).
    pub body: String,
}

impl Request {
    /// The integer value of query parameter `key`, if present and valid.
    pub fn query_u64(&self, key: &str) -> Option<u64> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == key).then(|| v.parse().ok())?
        })
    }
}

/// One response to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Deterministic back-pressure hint for 429/503 responses.
    pub retry_after_ms: Option<u64>,
    /// Plain-text body.
    pub body: String,
}

impl Response {
    /// A 200 with the given body.
    pub fn ok(body: impl Into<String>) -> Response {
        Response::text(200, body)
    }

    /// An arbitrary-status plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            retry_after_ms: None,
            body: body.into(),
        }
    }

    /// A load-shedding response carrying the retry-after hint.
    pub fn shed(status: u16, retry_after_ms: u64, body: impl Into<String>) -> Response {
        Response {
            status,
            retry_after_ms: Some(retry_after_ms),
            body: body.into(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads one request from `reader` (a buffered wrapper of the accepted
/// stream).
///
/// # Errors
/// I/O errors propagate; malformed framing and oversized bodies come
/// back as [`InvalidData`](std::io::ErrorKind::InvalidData), which the
/// connection handler maps to a 400/413.
pub fn read_request<R: BufRead>(reader: &mut R) -> std::io::Result<Request> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(invalid("empty request"));
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| invalid("missing method"))?;
    let target = parts.next().ok_or_else(|| invalid("missing path"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(invalid("truncated headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| invalid("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(invalid("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| invalid("body is not UTF-8"))?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        body,
    })
}

/// Serializes `resp` onto `stream` and flushes it.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        reason(resp.status),
        resp.body.len(),
    );
    if let Some(ms) = resp.retry_after_ms {
        head.push_str(&format!("Retry-After: {}\r\n", ms.div_ceil(1000)));
        head.push_str(&format!("X-Retry-After-Ms: {ms}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// A client-side view of one response.
#[derive(Clone, Debug)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// The `X-Retry-After-Ms` hint, when the server sent one.
    pub retry_after_ms: Option<u64>,
    /// Response body.
    pub body: String,
}

impl Reply {
    /// Whether the server shed the request (retry may help).
    pub fn is_shed(&self) -> bool {
        self.status == 429 || self.status == 503
    }
}

/// Performs one request against `addr` and reads the full response.
///
/// # Errors
/// Connection, timeout, and framing failures — the retrying client
/// treats all of them as transient.
pub fn roundtrip(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<Reply> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    let mut content_length: Option<usize> = None;
    let mut retry_after_ms = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(invalid("truncated response headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            let v = v.trim();
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.parse().ok();
            } else if k.eq_ignore_ascii_case("x-retry-after-ms") {
                retry_after_ms = v.parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|_| invalid("response body is not UTF-8"))?
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(Reply {
        status,
        retry_after_ms,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_post_with_body_and_query() {
        let raw = b"POST /jobs?since=3 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query_u64("since"), Some(3));
        assert_eq!(req.query_u64("missing"), None);
        assert_eq!(req.body, "hello");
    }

    #[test]
    fn oversized_bodies_are_refused_up_front() {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = read_request(&mut Cursor::new(raw.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_framing_is_invalid_not_a_hang() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n";
        assert!(read_request(&mut Cursor::new(&raw[..])).is_err());
        assert!(read_request(&mut Cursor::new(&b""[..])).is_err());
    }
}
