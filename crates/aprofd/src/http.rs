//! A deliberately tiny HTTP/1.1 subset over `std::net`.
//!
//! The workspace is dependency-free by design, so the daemon speaks
//! just enough HTTP for line tools and `curl`: plain-text bodies and a
//! `Content-Length` requirement both ways. Connections are persistent
//! by HTTP/1.1 default — a client that sends `Connection: close` (or a
//! server answering under brownout) gets the one-shot behavior back,
//! and the server caps requests per connection at
//! [`MAX_REQUESTS_PER_CONN`] so a single socket cannot hold an
//! io-thread forever. Responses that shed load carry the deterministic
//! back-pressure hint in both the standard `Retry-After` (whole
//! seconds, rounded up) and the millisecond `X-Retry-After-Ms` header
//! the `aprofctl` client honors.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body: job specs are a few hundred bytes,
/// so anything near this bound is abuse, not a job.
pub const MAX_BODY: usize = 64 * 1024;

/// Largest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 4 * 1024;

/// Largest accepted single header line.
pub const MAX_HEADER_LINE: usize = 4 * 1024;

/// Most header lines accepted in one request.
pub const MAX_HEADERS: usize = 64;

/// Requests served on one keep-alive connection before the server
/// closes it — bounds how long a single client can monopolize an
/// io-thread, and recycles per-connection buffers.
pub const MAX_REQUESTS_PER_CONN: usize = 100;

/// Why reading a request off a connection failed — typed so the
/// connection handler can answer 400/408/413 (or stay silent) instead
/// of guessing from an [`std::io::ErrorKind`].
#[derive(Debug)]
pub enum RequestError {
    /// The request exceeds a protocol bound (body, request line, header
    /// line, or header count) — answered with 413 and closed before the
    /// oversized data is buffered.
    TooLarge(String),
    /// The bytes are not a well-formed request — answered with 400.
    Malformed(String),
    /// The socket's read deadline expired mid-request (slow-loris or a
    /// wedged client) — answered with 408, best-effort.
    Timeout,
    /// The peer closed (or tore) the connection; nothing to answer.
    Closed,
    /// Any other transport failure; nothing to answer.
    Io(std::io::Error),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::TooLarge(what) => write!(f, "request too large: {what}"),
            RequestError::Malformed(what) => write!(f, "malformed request: {what}"),
            RequestError::Timeout => write!(f, "read deadline expired"),
            RequestError::Closed => write!(f, "connection closed"),
            RequestError::Io(e) => write!(f, "transport failed: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// Classifies a raw socket error: a blown read deadline (reported as
/// `WouldBlock` or `TimedOut` depending on platform) becomes
/// [`RequestError::Timeout`]; a torn stream becomes
/// [`RequestError::Closed`].
fn classify(e: std::io::Error) -> RequestError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RequestError::Timeout,
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::BrokenPipe => RequestError::Closed,
        _ => RequestError::Io(e),
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (empty when absent).
    pub query: String,
    /// Request body (empty when absent).
    pub body: String,
    /// Whether the client asked for the connection to be closed after
    /// this response (`Connection: close`). HTTP/1.1 connections are
    /// persistent by default, so this is `false` unless sent.
    pub close: bool,
}

impl Request {
    /// The integer value of query parameter `key`, if present and valid.
    pub fn query_u64(&self, key: &str) -> Option<u64> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == key).then(|| v.parse().ok())?
        })
    }
}

/// One response to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Deterministic back-pressure hint for 429/503 responses.
    pub retry_after_ms: Option<u64>,
    /// Plain-text body.
    pub body: String,
}

impl Response {
    /// A 200 with the given body.
    pub fn ok(body: impl Into<String>) -> Response {
        Response::text(200, body)
    }

    /// An arbitrary-status plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            retry_after_ms: None,
            body: body.into(),
        }
    }

    /// A load-shedding response carrying the retry-after hint.
    pub fn shed(status: u16, retry_after_ms: u64, body: impl Into<String>) -> Response {
        Response {
            status,
            retry_after_ms: Some(retry_after_ms),
            body: body.into(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        507 => "Insufficient Storage",
        _ => "Unknown",
    }
}

fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads one `\n`-terminated line, buffering at most `cap` bytes — a
/// slow-loris client dribbling an endless header line hits the cap
/// instead of growing the buffer without bound. The trailing `\r\n` (or
/// `\n`) is stripped. Returns `None` on clean EOF before any byte.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    cap: usize,
    what: &str,
) -> Result<Option<String>, RequestError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) => return Err(classify(e)),
        };
        if available.is_empty() {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(RequestError::Closed);
        }
        let (chunk, found) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (&available[..pos], true),
            None => (available, false),
        };
        if buf.len() + chunk.len() > cap {
            return Err(RequestError::TooLarge(format!(
                "{what} exceeds {cap} bytes"
            )));
        }
        buf.extend_from_slice(chunk);
        let consumed = chunk.len() + usize::from(found);
        reader.consume(consumed);
        if found {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return String::from_utf8(buf)
                .map(Some)
                .map_err(|_| RequestError::Malformed(format!("{what} is not UTF-8")));
        }
    }
}

/// Reads one request from `reader` (a buffered wrapper of the accepted
/// stream), enforcing the protocol bounds: [`MAX_REQUEST_LINE`],
/// [`MAX_HEADER_LINE`], [`MAX_HEADERS`], [`MAX_BODY`].
///
/// # Errors
/// [`RequestError`] — typed so the connection handler can answer
/// 413 (too large), 400 (malformed), 408 (read deadline blown), or
/// close silently (peer gone).
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, RequestError> {
    let line =
        read_line_capped(reader, MAX_REQUEST_LINE, "request line")?.ok_or(RequestError::Closed)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing method".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing path".into()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut content_length = 0usize;
    let mut headers = 0usize;
    let mut close = false;
    loop {
        let header = read_line_capped(reader, MAX_HEADER_LINE, "header line")?
            .ok_or(RequestError::Closed)?;
        if header.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(RequestError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        if let Some((k, v)) = header.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Malformed("bad content-length".into()))?;
            } else if k.eq_ignore_ascii_case("connection") {
                close = v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close"));
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(RequestError::TooLarge(format!(
            "body of {content_length} bytes exceeds {MAX_BODY}"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(classify)?;
    let body =
        String::from_utf8(body).map_err(|_| RequestError::Malformed("body is not UTF-8".into()))?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        body,
        close,
    })
}

/// Serializes `resp` onto `stream` and flushes it. `keep_alive` picks
/// the `Connection` header: the server passes `false` when the client
/// asked to close, the per-connection request cap is reached, the
/// daemon is draining, or the brownout ladder has disabled keep-alive.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(ms) = resp.retry_after_ms {
        head.push_str(&format!("Retry-After: {}\r\n", ms.div_ceil(1000)));
        head.push_str(&format!("X-Retry-After-Ms: {ms}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// A client-side view of one response.
#[derive(Clone, Debug)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// The `X-Retry-After-Ms` hint, when the server sent one.
    pub retry_after_ms: Option<u64>,
    /// Response body.
    pub body: String,
}

impl Reply {
    /// Whether the server shed the request (retry may help): queue
    /// pressure (429), draining or at the connection cap (503), or the
    /// state disk is full (507).
    pub fn is_shed(&self) -> bool {
        matches!(self.status, 429 | 503 | 507)
    }
}

/// Performs one request against `addr` and reads the full response.
///
/// # Errors
/// Connection, timeout, and framing failures — the retrying client
/// treats all of them as transient.
pub fn roundtrip(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<Reply> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    write_request(&mut writer, addr, method, path, body, true)?;
    let mut reader = BufReader::new(stream);
    let (reply, _) = read_reply(&mut reader)?;
    Ok(reply)
}

/// Writes one serialized request. `close` adds `Connection: close`;
/// otherwise the HTTP/1.1 default (persistent) applies.
fn write_request<W: Write>(
    writer: &mut W,
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "Connection: close\r\n" } else { "" };
    writer.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n{connection}\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// Reads one response off `reader`. Returns the reply plus whether the
/// server signaled `Connection: close` (the caller must not reuse the
/// connection in that case).
fn read_reply<R: BufRead>(reader: &mut R) -> std::io::Result<(Reply, bool)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    let mut content_length: Option<usize> = None;
    let mut retry_after_ms = None;
    let mut close = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(invalid("truncated response headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            let v = v.trim();
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.parse().ok();
            } else if k.eq_ignore_ascii_case("x-retry-after-ms") {
                retry_after_ms = v.parse().ok();
            } else if k.eq_ignore_ascii_case("connection") {
                close = v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close"));
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|_| invalid("response body is not UTF-8"))?
        }
        None => {
            // No framing: the body runs to EOF, so the connection is
            // spent whatever the Connection header said.
            close = true;
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok((
        Reply {
            status,
            retry_after_ms,
            body,
        },
        close,
    ))
}

/// A persistent keep-alive client connection: one TCP stream reused
/// across sequential requests, reconnecting transparently when the
/// server closes it (request cap, idle deadline, brownout, restart).
///
/// The reconnect-and-retry happens at most once per request and only
/// when a *reused* stream failed — a stale keep-alive connection dies
/// on first use, before the server has processed anything, so the
/// retry cannot double-apply a request. A fresh connection's failure
/// is reported to the caller unchanged.
#[derive(Debug)]
pub struct Conn {
    addr: String,
    timeout: Duration,
    stream: Option<BufReader<TcpStream>>,
}

impl Conn {
    /// A lazily-connected persistent client for `addr`.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Conn {
        Conn {
            addr: addr.into(),
            timeout,
            stream: None,
        }
    }

    fn connect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        self.stream = Some(BufReader::new(stream));
        Ok(())
    }

    fn try_request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<Reply> {
        let addr = self.addr.clone();
        let reader = self.stream.as_mut().expect("connected before try_request");
        write_request(reader.get_mut(), &addr, method, path, body, false)?;
        let (reply, close) = read_reply(reader)?;
        if close {
            self.stream = None;
        }
        Ok(reply)
    }

    /// Performs one request, reusing the open connection when possible.
    ///
    /// # Errors
    /// Connection, timeout, and framing failures, after the one
    /// stale-stream retry described on the type.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<Reply> {
        let reused = self.stream.is_some();
        if !reused {
            self.connect()?;
        }
        match self.try_request(method, path, body) {
            Ok(reply) => Ok(reply),
            Err(first) => {
                self.stream = None;
                if !reused {
                    return Err(first);
                }
                self.connect()?;
                match self.try_request(method, path, body) {
                    Ok(reply) => Ok(reply),
                    Err(e) => {
                        self.stream = None;
                        Err(e)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_post_with_body_and_query() {
        let raw = b"POST /jobs?since=3 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query_u64("since"), Some(3));
        assert_eq!(req.query_u64("missing"), None);
        assert_eq!(req.body, "hello");
        assert!(!req.close, "HTTP/1.1 default is keep-alive");
    }

    #[test]
    fn connection_close_is_parsed_case_insensitively() {
        for header in [
            "Connection: close",
            "connection: Close",
            "Connection: x, close",
        ] {
            let raw = format!("GET / HTTP/1.1\r\n{header}\r\n\r\n");
            let req = read_request(&mut Cursor::new(raw.as_bytes())).unwrap();
            assert!(req.close, "{header}");
        }
        let raw = b"GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
        assert!(!read_request(&mut Cursor::new(&raw[..])).unwrap().close);
    }

    #[test]
    fn read_reply_reports_the_connection_verdict() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok";
        let (reply, close) = read_reply(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(
            (reply.status, reply.body.as_str(), close),
            (200, "ok", false)
        );
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nX-Retry-After-Ms: 250\r\nConnection: close\r\n\r\n";
        let (reply, close) = read_reply(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!((reply.retry_after_ms, close), (Some(250), true));
        // Unframed bodies spend the connection even without the header.
        let raw = b"HTTP/1.1 200 OK\r\n\r\ntail";
        let (reply, close) = read_reply(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!((reply.body.as_str(), close), ("tail", true));
    }

    #[test]
    fn oversized_bodies_are_refused_up_front() {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = read_request(&mut Cursor::new(raw.as_bytes())).unwrap_err();
        assert!(matches!(err, RequestError::TooLarge(_)), "{err}");
    }

    #[test]
    fn truncated_framing_is_invalid_not_a_hang() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(&raw[..])),
            Err(RequestError::Closed)
        ));
        assert!(matches!(
            read_request(&mut Cursor::new(&b""[..])),
            Err(RequestError::Closed)
        ));
    }

    #[test]
    fn giant_request_line_is_too_large_without_buffering_it() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        let err = read_request(&mut Cursor::new(raw.as_bytes())).unwrap_err();
        assert!(matches!(err, RequestError::TooLarge(_)), "{err}");
    }

    #[test]
    fn giant_header_line_is_too_large() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "b".repeat(MAX_HEADER_LINE)
        );
        let err = read_request(&mut Cursor::new(raw.as_bytes())).unwrap_err();
        assert!(matches!(err, RequestError::TooLarge(_)), "{err}");
    }

    #[test]
    fn too_many_headers_are_refused() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            raw.push_str(&format!("X-H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        let err = read_request(&mut Cursor::new(raw.as_bytes())).unwrap_err();
        assert!(matches!(err, RequestError::TooLarge(_)), "{err}");
    }

    #[test]
    fn shed_covers_disk_full() {
        for status in [429, 503, 507] {
            let r = Reply {
                status,
                retry_after_ms: Some(1),
                body: String::new(),
            };
            assert!(r.is_shed(), "{status}");
        }
        assert!(!Reply {
            status: 500,
            retry_after_ms: None,
            body: String::new()
        }
        .is_shed());
    }
}
