//! Job specifications: the canonical, line-oriented description of one
//! supervised sweep a tenant submits to the daemon.
//!
//! A spec is `key value` lines (`#` comments and blank lines ignored).
//! [`JobSpec::canonical_text`] renders a spec with fixed key order and
//! normalized values, so the same job always serializes to the same
//! bytes — that canonical form (plus the daemon's submission counter)
//! is what [`job_id`] hashes, making job IDs, journal paths, and
//! artifacts reproducible across restarts with no wall clock or RNG
//! anywhere in the derivation.
//!
//! Validation happens at admission, mirroring the CLI rule in `repro`
//! and `aprof`: a zero deadline (always expired) or zero attempt
//! budget (never runs) is rejected with a clear error instead of being
//! silently clamped downstream.

use drms::sched::fnv1a;
use drms::vm::DecodeMode;
use drms_bench::supervisor::SupervisorOptions;
use drms_bench::sweep::{SweepSpec, FAMILIES};
use std::fmt::Write as _;
use std::time::Duration;

/// Largest admissible grid (`sizes × seeds`); a bounded service must
/// refuse a pathological submission instead of queueing months of work.
pub const MAX_GRID: usize = 4096;

/// One sweep job as submitted by a tenant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Submitting tenant (fairness and quota key).
    pub tenant: String,
    /// Workload family (must be one of [`FAMILIES`]).
    pub family: String,
    /// Workload sizes of the grid.
    pub sizes: Vec<i64>,
    /// Guest seeds of the grid.
    pub seeds: Vec<u64>,
    /// Worker threads the sweep itself may use.
    pub jobs: usize,
    /// Scheduling priority, `0..=9` (higher dispatches first; default
    /// 0). When every daemon worker is busy, a queued job with a
    /// strictly higher priority preempts the lowest-priority running
    /// job at its next grid-cell boundary.
    pub priority: u8,
    /// Supervisor attempts per cell before quarantine (≥ 1).
    pub max_attempts: u32,
    /// Per-attempt wall-clock budget in milliseconds (≥ 1 when set).
    pub deadline_ms: Option<u64>,
    /// Per-attempt instruction budget (the VM watchdog; ≥ 1 when set).
    pub max_instructions: Option<u64>,
    /// Interpreter dispatch mode (`off`, `blocks`, `fused`); `None`
    /// keeps the VM default. A pure performance knob — results are
    /// identical across modes.
    pub decode: Option<DecodeMode>,
    /// Tool event-batch capacity (≥ 1 when set — a zero-capacity batch
    /// could never buffer an event, so it is rejected at admission).
    pub event_batch: Option<usize>,
    /// Whether the job spills its event stream into per-thread binary
    /// trace shards (`on` / `-`). The daemon maps this to a
    /// `job-<id>.shards` directory under its state dir, retained as a
    /// job artifact and garbage-collected with the rest.
    pub trace_dir: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            tenant: "default".to_string(),
            family: String::new(),
            sizes: Vec::new(),
            seeds: vec![1],
            jobs: 1,
            priority: 0,
            max_attempts: 3,
            deadline_ms: None,
            max_instructions: None,
            decode: None,
            event_batch: None,
            trace_dir: false,
        }
    }
}

/// A malformed or inadmissible job spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// The offending spec field.
    pub field: &'static str,
    /// What is wrong with it.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job spec field `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for SpecError {}

fn err(field: &'static str, message: impl Into<String>) -> SpecError {
    SpecError {
        field,
        message: message.into(),
    }
}

fn parse_list<T: std::str::FromStr>(field: &'static str, v: &str) -> Result<Vec<T>, SpecError> {
    v.split(',')
        .map(|s| s.trim().parse::<T>())
        .collect::<Result<Vec<T>, _>>()
        .map_err(|_| err(field, format!("bad list `{v}` (comma-separated integers)")))
}

fn parse_num<T: std::str::FromStr>(field: &'static str, v: &str) -> Result<T, SpecError> {
    v.parse::<T>()
        .map_err(|_| err(field, format!("bad number `{v}`")))
}

fn parse_opt_num<T: std::str::FromStr>(
    field: &'static str,
    v: &str,
) -> Result<Option<T>, SpecError> {
    if v == "-" {
        return Ok(None);
    }
    parse_num(field, v).map(Some)
}

impl JobSpec {
    /// Parses a spec from `key value` lines and validates it.
    ///
    /// # Errors
    /// [`SpecError`] names the offending field: unknown keys, malformed
    /// values, and every admission rule of [`validate`](Self::validate).
    pub fn parse(text: &str) -> Result<JobSpec, SpecError> {
        let mut spec = JobSpec::default();
        let mut have_family = false;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| err("spec", format!("line without value: `{line}`")))?;
            let value = value.trim();
            match key {
                "tenant" => spec.tenant = value.to_string(),
                "family" => {
                    spec.family = value.to_string();
                    have_family = true;
                }
                "sizes" => spec.sizes = parse_list("sizes", value)?,
                "seeds" => spec.seeds = parse_list("seeds", value)?,
                "jobs" => spec.jobs = parse_num("jobs", value)?,
                "priority" => spec.priority = parse_num("priority", value)?,
                "max_attempts" => spec.max_attempts = parse_num("max_attempts", value)?,
                "deadline_ms" => spec.deadline_ms = parse_opt_num("deadline_ms", value)?,
                "max_instructions" => {
                    spec.max_instructions = parse_opt_num("max_instructions", value)?
                }
                "decode" => {
                    spec.decode = if value == "-" {
                        None
                    } else {
                        Some(value.parse().map_err(|e| err("decode", e))?)
                    }
                }
                "event_batch" => spec.event_batch = parse_opt_num("event_batch", value)?,
                "trace_dir" => {
                    spec.trace_dir = match value {
                        "on" => true,
                        "-" | "off" => false,
                        other => {
                            return Err(err(
                                "trace_dir",
                                format!("bad value `{other}` (on | off | -)"),
                            ))
                        }
                    }
                }
                other => return Err(err("spec", format!("unknown key `{other}`"))),
            }
        }
        if !have_family {
            return Err(err("family", "missing (required)"));
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Applies the admission rules. Called by [`parse`](Self::parse);
    /// public so programmatically-built specs get the same screening.
    pub fn validate(&self) -> Result<(), SpecError> {
        if !FAMILIES.contains(&self.family.as_str()) {
            return Err(err(
                "family",
                format!(
                    "unknown `{}` (one of: {})",
                    self.family,
                    FAMILIES.join(", ")
                ),
            ));
        }
        if self.tenant.is_empty() || self.tenant.len() > 64 {
            return Err(err("tenant", "must be 1..=64 characters"));
        }
        if !self
            .tenant
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(err("tenant", "only [A-Za-z0-9_-] allowed"));
        }
        if self.sizes.is_empty() {
            return Err(err("sizes", "missing (required)"));
        }
        if self.sizes.iter().any(|&s| s < 1) {
            return Err(err("sizes", "every size must be >= 1"));
        }
        if self.seeds.is_empty() {
            return Err(err("seeds", "must name at least one seed"));
        }
        if self.sizes.len().saturating_mul(self.seeds.len()) > MAX_GRID {
            return Err(err(
                "sizes",
                format!("grid larger than {MAX_GRID} cells is not admissible"),
            ));
        }
        if self.jobs == 0 {
            return Err(err("jobs", "must be >= 1"));
        }
        if self.priority > 9 {
            return Err(err("priority", "must be in 0..=9"));
        }
        if self.max_attempts == 0 {
            return Err(err(
                "max_attempts",
                "must be >= 1 (0 would never run a cell)",
            ));
        }
        if self.deadline_ms == Some(0) {
            return Err(err(
                "deadline_ms",
                "must be >= 1 (0 expires before the run starts)",
            ));
        }
        if self.max_instructions == Some(0) {
            return Err(err(
                "max_instructions",
                "must be >= 1 (0 aborts before the first instruction)",
            ));
        }
        if self.event_batch == Some(0) {
            return Err(err(
                "event_batch",
                "must be >= 1 (0 could never buffer an event)",
            ));
        }
        Ok(())
    }

    /// The canonical rendering: fixed key order, normalized values.
    /// Identical specs — however the submission was formatted — render
    /// to identical bytes; [`job_id`] hashes exactly this.
    pub fn canonical_text(&self) -> String {
        fn opt(v: &Option<u64>) -> String {
            v.map_or("-".to_string(), |n| n.to_string())
        }
        let mut out = String::new();
        let _ = writeln!(out, "tenant {}", self.tenant);
        let _ = writeln!(out, "family {}", self.family);
        let _ = writeln!(out, "sizes {}", csv(&self.sizes));
        let _ = writeln!(out, "seeds {}", csv(&self.seeds));
        let _ = writeln!(out, "jobs {}", self.jobs);
        let _ = writeln!(out, "priority {}", self.priority);
        let _ = writeln!(out, "max_attempts {}", self.max_attempts);
        let _ = writeln!(out, "deadline_ms {}", opt(&self.deadline_ms));
        let _ = writeln!(out, "max_instructions {}", opt(&self.max_instructions));
        let _ = writeln!(
            out,
            "decode {}",
            self.decode.map_or("-".to_string(), |d| d.to_string())
        );
        let _ = writeln!(
            out,
            "event_batch {}",
            self.event_batch.map_or("-".to_string(), |n| n.to_string())
        );
        let _ = writeln!(out, "trace_dir {}", if self.trace_dir { "on" } else { "-" });
        out
    }

    /// The sweep grid this job runs.
    pub fn sweep_spec(&self) -> SweepSpec {
        SweepSpec::new(&self.family, &self.sizes, self.jobs).seeds(&self.seeds)
    }

    /// The supervisor failure policy this job inherits: attempts,
    /// per-attempt deadline and instruction budget from the spec,
    /// default deterministic backoff.
    pub fn supervisor_options(&self) -> SupervisorOptions {
        SupervisorOptions {
            max_attempts: self.max_attempts,
            deadline: self.deadline_ms.map(Duration::from_millis),
            max_instructions: self.max_instructions,
            decode: self.decode,
            event_batch: self.event_batch,
            ..SupervisorOptions::default()
        }
    }

    /// Number of cells in the grid.
    pub fn grid_len(&self) -> usize {
        self.sizes.len() * self.seeds.len()
    }
}

fn csv<T: std::fmt::Display>(v: &[T]) -> String {
    v.iter().map(T::to_string).collect::<Vec<_>>().join(",")
}

/// Derives the job ID: FNV-1a over the canonical spec text plus the
/// daemon's submission counter. Never wall clock, never randomness —
/// restarting the daemon and replaying the same submissions yields the
/// same IDs, which is what lets the CI kill-and-resume gate `cmp`
/// artifacts across daemon generations by path.
pub fn job_id(spec: &JobSpec, submitted: u64) -> String {
    let keyed = format!("{}submitted {submitted}\n", spec.canonical_text());
    format!("{:016x}", fnv1a(keyed.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> JobSpec {
        JobSpec {
            family: "stream".to_string(),
            sizes: vec![4, 8],
            ..JobSpec::default()
        }
    }

    #[test]
    fn parse_roundtrips_through_canonical_text() {
        let spec = JobSpec::parse("family stream\nsizes 8, 4\nseeds 2,1\njobs 2\n").unwrap();
        let reparsed = JobSpec::parse(&spec.canonical_text()).unwrap();
        assert_eq!(spec, reparsed);
        assert_eq!(spec.canonical_text(), reparsed.canonical_text());
    }

    #[test]
    fn ids_are_deterministic_and_counter_keyed() {
        let spec = minimal();
        assert_eq!(job_id(&spec, 1), job_id(&spec, 1));
        assert_ne!(
            job_id(&spec, 1),
            job_id(&spec, 2),
            "counter is part of the key"
        );
        let other = JobSpec {
            seeds: vec![2],
            ..minimal()
        };
        assert_ne!(
            job_id(&spec, 1),
            job_id(&other, 1),
            "spec is part of the key"
        );
        assert_eq!(job_id(&spec, 1).len(), 16, "fixed-width hex");
    }

    #[test]
    fn zero_budgets_are_rejected_at_parse_time() {
        let e = JobSpec::parse("family stream\nsizes 4\ndeadline_ms 0\n").unwrap_err();
        assert_eq!(e.field, "deadline_ms");
        assert!(e.to_string().contains("expires before"), "{e}");
        let e = JobSpec::parse("family stream\nsizes 4\nmax_attempts 0\n").unwrap_err();
        assert_eq!(e.field, "max_attempts");
        let e = JobSpec::parse("family stream\nsizes 4\nmax_instructions 0\n").unwrap_err();
        assert_eq!(e.field, "max_instructions");
        let e = JobSpec::parse("family stream\nsizes 4\njobs 0\n").unwrap_err();
        assert_eq!(e.field, "jobs");
    }

    #[test]
    fn admission_rules_screen_bad_specs() {
        assert!(JobSpec::parse("family nope\nsizes 4\n").is_err());
        assert!(JobSpec::parse("sizes 4\n").is_err(), "family required");
        assert!(JobSpec::parse("family stream\n").is_err(), "sizes required");
        assert!(JobSpec::parse("family stream\nsizes 0\n").is_err());
        assert!(JobSpec::parse("family stream\nsizes 4\ntenant a b\n").is_err());
        assert!(JobSpec::parse("family stream\nsizes 4\nbogus 1\n").is_err());
        let huge = (1..=100)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let text = format!("family stream\nsizes {huge}\nseeds {huge}\n");
        let e = JobSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("grid larger"), "{e}");
    }

    #[test]
    fn dispatch_knobs_parse_validate_and_roundtrip() {
        let spec =
            JobSpec::parse("family stream\nsizes 4\ndecode blocks\nevent_batch 256\n").unwrap();
        assert_eq!(spec.decode, Some(DecodeMode::Blocks));
        assert_eq!(spec.event_batch, Some(256));
        let reparsed = JobSpec::parse(&spec.canonical_text()).unwrap();
        assert_eq!(spec, reparsed);
        let opts = spec.supervisor_options();
        assert_eq!(opts.decode, Some(DecodeMode::Blocks));
        assert_eq!(opts.event_batch, Some(256));
        // The knobs key the job ID: an A/B pair gets distinct artifacts.
        let plain = JobSpec::parse("family stream\nsizes 4\n").unwrap();
        assert_ne!(job_id(&spec, 1), job_id(&plain, 1));

        let e = JobSpec::parse("family stream\nsizes 4\nevent_batch 0\n").unwrap_err();
        assert_eq!(e.field, "event_batch");
        assert!(e.message.contains("never buffer"), "{e}");
        let e = JobSpec::parse("family stream\nsizes 4\ndecode warp\n").unwrap_err();
        assert_eq!(e.field, "decode");
    }

    #[test]
    fn trace_dir_parses_roundtrips_and_keys_the_id() {
        let spec = JobSpec::parse("family stream\nsizes 4\ntrace_dir on\n").unwrap();
        assert!(spec.trace_dir);
        let reparsed = JobSpec::parse(&spec.canonical_text()).unwrap();
        assert_eq!(spec, reparsed);
        let off = JobSpec::parse("family stream\nsizes 4\ntrace_dir off\n").unwrap();
        assert!(!off.trace_dir);
        let dash = JobSpec::parse("family stream\nsizes 4\ntrace_dir -\n").unwrap();
        assert!(!dash.trace_dir);
        // Spilling shards keys the job ID: the artifact set differs.
        assert_ne!(job_id(&spec, 1), job_id(&off, 1));
        let e = JobSpec::parse("family stream\nsizes 4\ntrace_dir maybe\n").unwrap_err();
        assert_eq!(e.field, "trace_dir");
    }

    #[test]
    fn priority_parses_validates_and_keys_the_id() {
        let spec = JobSpec::parse("family stream\nsizes 4\npriority 7\n").unwrap();
        assert_eq!(spec.priority, 7);
        let reparsed = JobSpec::parse(&spec.canonical_text()).unwrap();
        assert_eq!(spec, reparsed);
        let plain = JobSpec::parse("family stream\nsizes 4\n").unwrap();
        assert_eq!(plain.priority, 0, "default is the lowest band");
        // Priority keys the job ID like every other spec field; only the
        // journal-binding payload (grid + failure policy) excludes it.
        assert_ne!(job_id(&spec, 1), job_id(&plain, 1));
        let e = JobSpec::parse("family stream\nsizes 4\npriority 10\n").unwrap_err();
        assert_eq!(e.field, "priority");
        assert!(e.message.contains("0..=9"), "{e}");
        let e = JobSpec::parse("family stream\nsizes 4\npriority -1\n").unwrap_err();
        assert_eq!(e.field, "priority");
    }

    #[test]
    fn supervisor_options_inherit_the_budgets() {
        let spec = JobSpec {
            max_attempts: 5,
            deadline_ms: Some(1500),
            max_instructions: Some(9_000),
            ..minimal()
        };
        let opts = spec.supervisor_options();
        assert_eq!(opts.max_attempts, 5);
        assert_eq!(opts.deadline, Some(Duration::from_millis(1500)));
        assert_eq!(opts.max_instructions, Some(9_000));
        let defaults = SupervisorOptions::default();
        assert_eq!(opts.backoff_base_ms, defaults.backoff_base_ms);
    }
}
