//! `aprofd` — the profiling service daemon.
//!
//! ```text
//! aprofd --state-dir DIR [--addr 127.0.0.1:0] [--addr-file FILE]
//!        [--workers N] [--queue-cap N] [--tenant-queued N] [--tenant-running N]
//! ```
//!
//! Binds, prints `aprofd listening on <addr>` (and writes the address
//! to `--addr-file` for scripts that bound port 0), restores any
//! journaled jobs found in the state directory, then serves until a
//! graceful drain completes. SIGTERM and `POST /shutdown` both begin
//! the drain: submissions are refused, running jobs finish, queued
//! jobs stay on disk for the next start. SIGKILL is the crash path the
//! journal exists for — restart with the same `--state-dir` and every
//! unfinished job resumes to byte-identical artifacts.

use drms_aprofd::daemon::{serve, Daemon, DaemonConfig};
use drms_aprofd::queue::QueueConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Set by the SIGTERM handler; polled by the drain watcher thread.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Installs `on_term` for SIGTERM (15) via the libc `signal` the Rust
/// runtime already links — the workspace is dependency-free, so no
/// `libc` crate.
fn install_sigterm() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(15, on_term);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: aprofd --state-dir DIR [--addr HOST:PORT] [--addr-file FILE]\n\
         \x20             [--workers N] [--io-threads N] [--queue-cap N] [--tenant-queued N]\n\
         \x20             [--tenant-running N] [--max-conns N] [--read-timeout-ms N]\n\
         \x20             [--poll-timeout-ms N] [--retain N] [--retain-age-ms N]\n\
         \x20             [--host-faults SPEC]\n\
         \n\
         --state-dir DIR      job specs, journals, and artifacts (required)\n\
         --addr HOST:PORT     bind address (default 127.0.0.1:0)\n\
         --addr-file FILE     write the bound address here (for port 0)\n\
         --workers N          concurrent jobs; 0 = admit-only (default 2)\n\
         --io-threads N       connection-handler threads (default 4)\n\
         --queue-cap N        queued jobs before submissions shed (default 64)\n\
         --tenant-queued N    queued jobs per tenant before shed (default 16)\n\
         --tenant-running N   running jobs per tenant (default 2)\n\
         --max-conns N        queued+handled connections; excess shed 503 (default 64)\n\
         --read-timeout-ms N  per-socket read/write + keep-alive idle deadline (default 10000)\n\
         --poll-timeout-ms N  long-poll hold for /jobs/ID/events (default 10000)\n\
         --retain N           keep at most N finished jobs; prune older (default all)\n\
         --retain-age-ms N    prune finished jobs older than N ms (default never)\n\
         --host-faults SPEC   inject host I/O faults (chaos testing), e.g.\n\
         \x20                    'write:enospc:after=4096' or 'fsync:eio:once=2'"
    );
    std::process::exit(2);
}

fn parse_num(flag: &str, v: Option<String>) -> usize {
    match v.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("{flag} needs a number");
            usage();
        }
    }
}

fn main() {
    let mut state_dir: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut addr_file: Option<PathBuf> = None;
    let mut workers = 2usize;
    let mut io_threads = 4usize;
    let mut queue = QueueConfig::default();
    let mut max_connections = 64usize;
    let mut read_timeout_ms = 10_000u64;
    let mut poll_timeout_ms = 10_000u64;
    let mut retain_count: Option<usize> = None;
    let mut retain_age_ms: Option<u64> = None;
    let mut host_faults: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--state-dir" => state_dir = args.next().map(PathBuf::from),
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--addr-file" => addr_file = args.next().map(PathBuf::from),
            "--workers" => workers = parse_num("--workers", args.next()),
            "--io-threads" => io_threads = parse_num("--io-threads", args.next()),
            "--queue-cap" => queue.capacity = parse_num("--queue-cap", args.next()),
            "--tenant-queued" => {
                queue.tenant_queued_cap = parse_num("--tenant-queued", args.next())
            }
            "--tenant-running" => {
                queue.tenant_running_cap = parse_num("--tenant-running", args.next())
            }
            "--max-conns" => max_connections = parse_num("--max-conns", args.next()),
            "--read-timeout-ms" => {
                read_timeout_ms = parse_num("--read-timeout-ms", args.next()) as u64
            }
            "--poll-timeout-ms" => {
                poll_timeout_ms = parse_num("--poll-timeout-ms", args.next()) as u64
            }
            "--retain" => retain_count = Some(parse_num("--retain", args.next())),
            "--retain-age-ms" => {
                retain_age_ms = Some(parse_num("--retain-age-ms", args.next()) as u64)
            }
            "--host-faults" => host_faults = args.next(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    let Some(state_dir) = state_dir else {
        eprintln!("--state-dir is required");
        usage();
    };
    if queue.capacity == 0 {
        eprintln!("--queue-cap must be >= 1 (0 would shed every submission)");
        std::process::exit(2);
    }
    let host_io = match host_faults.as_deref() {
        None => drms::trace::hostio::HostIo::real(),
        Some(spec) => match drms::trace::hostio::HostIo::from_spec(spec) {
            Ok(io) => {
                eprintln!("aprofd: CHAOS MODE — injecting host faults from `{spec}`");
                io
            }
            Err(e) => {
                eprintln!("aprofd: {e}");
                std::process::exit(2);
            }
        },
    };

    install_sigterm();

    let cfg = DaemonConfig {
        workers,
        io_threads,
        queue,
        host_io,
        retain_count,
        retain_age: retain_age_ms.map(std::time::Duration::from_millis),
        max_connections,
        read_timeout: std::time::Duration::from_millis(read_timeout_ms),
        poll_timeout: std::time::Duration::from_millis(poll_timeout_ms),
        ..DaemonConfig::new(state_dir)
    };
    let daemon = match Daemon::new(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("aprofd: state dir unusable: {e}");
            std::process::exit(1);
        }
    };
    let listener = match std::net::TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("aprofd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    println!("aprofd listening on {bound}");
    if let Some(path) = addr_file {
        if let Err(e) = drms_bench::artifact::atomic_write(&path, &format!("{bound}\n")) {
            eprintln!("aprofd: cannot write addr file: {e}");
            std::process::exit(1);
        }
    }

    let handles = daemon.spawn_workers();

    // Bridge SIGTERM to the graceful drain.
    {
        let d = Arc::clone(&daemon);
        std::thread::spawn(move || loop {
            if TERM.load(Ordering::SeqCst) {
                d.begin_drain();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }

    if let Err(e) = serve(Arc::clone(&daemon), listener) {
        eprintln!("aprofd: accept loop failed: {e}");
        std::process::exit(1);
    }
    for h in handles {
        let _ = h.join();
    }
    println!("aprofd drained");
}
