//! `aprofctl` — line client for the `aprofd` profiling service.
//!
//! ```text
//! aprofctl [--addr HOST:PORT | --addr-file FILE] [--retries N] CMD ...
//!
//!   submit [SPEC-FILE]        submit a job spec (stdin when omitted); prints the id
//!   status ID                 one job's status lines
//!   wait ID [--timeout-ms N]  poll until the job finishes
//!   report ID [--since N]     snapshot (or delta) report of a live or done job
//!   watch ID                  stream finished cells over one keep-alive connection
//!   metrics [ID]              daemon (or per-job) metrics as Prometheus text
//!   health                    daemon health lines
//!   shutdown                  begin the graceful drain
//! ```
//!
//! `watch` drives the `/jobs/ID/events` long-poll: the daemon holds
//! each request until new cells finish (or its poll timeout passes)
//! and the client re-arms from the returned cursor — all over a single
//! persistent connection, so a dashboard costs one socket, not one per
//! poll.
//!
//! Retries are the supervisor's discipline: exponential backoff with
//! seeded FNV-1a jitter, honoring the server's `X-Retry-After-Ms` when
//! a submission is shed.
//!
//! Exit codes: 0 ok · 1 transport/daemon failure · 2 usage ·
//! 3 shed after retries · 4 job failed · 5 timed out (a `wait` that
//! never finished, or a hung daemon blowing the per-request socket
//! deadline on every retry).

use drms_aprofd::client::{Client, ClientError};
use std::io::Read as _;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: aprofctl [--addr HOST:PORT | --addr-file FILE] [--retries N]\n\
         \x20               [--timeout-ms N] CMD ...\n\
         \n\
         commands:\n\
         \x20 submit [SPEC-FILE]        submit a job spec (stdin when omitted); prints the id\n\
         \x20 status ID                 one job's status lines\n\
         \x20 wait ID [--timeout-ms N]  poll until the job finishes (default 120000)\n\
         \x20 report ID [--since N]     snapshot (or delta) report\n\
         \x20 watch ID                  stream finished cells until the job ends\n\
         \x20 metrics [ID]              daemon (or per-job) metrics\n\
         \x20 health                    daemon health lines\n\
         \x20 shutdown                  begin the graceful drain"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display, code: i32) -> ! {
    eprintln!("aprofctl: {msg}");
    std::process::exit(code);
}

/// Runs one request, mapping terminal outcomes to exit codes: shed
/// exhaustion is 3 (distinct, scriptable), a hung daemon blowing the
/// socket deadline on every retry is 5 (timeout), transport failure
/// is 1. The socket deadline means a wedged daemon can never wedge the
/// client with it.
fn run(client: &Client, method: &str, path: &str, body: &str) -> drms_aprofd::http::Reply {
    match client.request(method, path, body) {
        Ok(reply) => reply,
        Err(e @ ClientError::Shed(_)) => fail(e, 3),
        Err(e @ ClientError::Timeout(_)) => fail(
            format!(
                "{e} (daemon hung or unreachable; socket deadline {:?})",
                client.timeout
            ),
            5,
        ),
        Err(e) => fail(e, 1),
    }
}

/// The `state` line of a status body, if present.
fn state_of(body: &str) -> Option<&str> {
    body.lines().find_map(|l| l.strip_prefix("state "))
}

fn main() {
    let mut addr: Option<String> = None;
    let mut retries: Option<u32> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut rest: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--addr-file" => {
                let path = args.next().unwrap_or_else(|| usage());
                match std::fs::read_to_string(&path) {
                    Ok(text) => addr = Some(text.trim().to_string()),
                    Err(e) => fail(format!("cannot read addr file `{path}`: {e}"), 1),
                }
            }
            "--retries" => retries = args.next().and_then(|v| v.parse().ok()),
            "--timeout-ms" if rest.is_empty() => {
                timeout_ms = args.next().and_then(|v| v.parse().ok());
                if timeout_ms.is_none() {
                    fail("--timeout-ms needs a number of milliseconds", 2);
                }
            }
            "--help" | "-h" => usage(),
            _ => {
                rest.push(arg);
                rest.extend(args.by_ref());
            }
        }
    }
    let Some(addr) = addr else {
        fail("--addr or --addr-file is required", 2);
    };
    let mut client = Client::new(addr);
    if let Some(n) = retries {
        client.attempts = n.max(1);
    }
    if let Some(ms) = timeout_ms {
        client.timeout = Duration::from_millis(ms.max(1));
    }

    let mut rest = rest.into_iter();
    let cmd = rest.next().unwrap_or_else(|| usage());
    match cmd.as_str() {
        "submit" => {
            let spec = match rest.next() {
                Some(path) => std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(format!("cannot read `{path}`: {e}"), 1)),
                None => {
                    let mut buf = String::new();
                    std::io::stdin()
                        .read_to_string(&mut buf)
                        .unwrap_or_else(|e| fail(format!("cannot read stdin: {e}"), 1));
                    buf
                }
            };
            let reply = run(&client, "POST", "/jobs", &spec);
            if reply.status != 200 {
                fail(reply.body.trim_end(), 1);
            }
            print!("{}", reply.body);
        }
        "status" => {
            let id = rest.next().unwrap_or_else(|| usage());
            let reply = run(&client, "GET", &format!("/jobs/{id}"), "");
            if reply.status != 200 {
                fail(reply.body.trim_end(), 1);
            }
            print!("{}", reply.body);
        }
        "wait" => {
            let id = rest.next().unwrap_or_else(|| usage());
            let mut timeout_ms = 120_000u64;
            if rest.next().as_deref() == Some("--timeout-ms") {
                timeout_ms = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            let deadline = Instant::now() + Duration::from_millis(timeout_ms);
            loop {
                let reply = run(&client, "GET", &format!("/jobs/{id}"), "");
                if reply.status != 200 {
                    fail(reply.body.trim_end(), 1);
                }
                match state_of(&reply.body) {
                    Some("done") => {
                        print!("{}", reply.body);
                        return;
                    }
                    Some("failed") => {
                        eprint!("{}", reply.body);
                        std::process::exit(4);
                    }
                    _ => {}
                }
                if Instant::now() >= deadline {
                    fail(
                        format!("job {id} still not finished after {timeout_ms} ms"),
                        5,
                    );
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        "report" => {
            let id = rest.next().unwrap_or_else(|| usage());
            let mut path = format!("/jobs/{id}/report");
            if rest.next().as_deref() == Some("--since") {
                let n: u64 = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                path.push_str(&format!("?since={n}"));
            }
            let reply = run(&client, "GET", &path, "");
            if reply.status != 200 {
                fail(reply.body.trim_end(), 1);
            }
            print!("{}", reply.body);
        }
        "watch" => {
            let id = rest.next().unwrap_or_else(|| usage());
            // One persistent connection for the whole watch: each
            // long-poll re-arms from the cursor the daemon returned.
            let mut conn = drms_aprofd::http::Conn::new(client.addr.clone(), client.timeout);
            let mut since = 0u64;
            loop {
                let path = format!("/jobs/{id}/events?since={since}");
                let reply = match conn.request("GET", &path, "") {
                    Ok(reply) => reply,
                    Err(e) => fail(format!("watch transport failed: {e}"), 1),
                };
                if reply.status != 200 {
                    fail(reply.body.trim_end(), 1);
                }
                let mut state = None;
                for line in reply.body.lines() {
                    if let Some(cursor) = line.strip_prefix("cursor ") {
                        since = cursor.parse().unwrap_or(since);
                    } else if let Some(s) = line.strip_prefix("state ") {
                        state = Some(s.to_string());
                    } else {
                        println!("{line}");
                    }
                }
                match state.as_deref() {
                    Some("done") => {
                        println!("state done");
                        return;
                    }
                    Some("failed") => {
                        eprintln!("state failed");
                        std::process::exit(4);
                    }
                    _ => {}
                }
            }
        }
        "metrics" => {
            let path = match rest.next() {
                Some(id) => format!("/jobs/{id}/metrics"),
                None => "/metrics".to_string(),
            };
            let reply = run(&client, "GET", &path, "");
            if reply.status != 200 {
                fail(reply.body.trim_end(), 1);
            }
            print!("{}", reply.body);
        }
        "health" => {
            let reply = run(&client, "GET", "/healthz", "");
            if reply.status != 200 {
                fail(reply.body.trim_end(), 1);
            }
            print!("{}", reply.body);
        }
        "shutdown" => {
            let reply = run(&client, "POST", "/shutdown", "");
            if reply.status != 200 {
                fail(reply.body.trim_end(), 1);
            }
            print!("{}", reply.body);
        }
        _ => usage(),
    }
}
