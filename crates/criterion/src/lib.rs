//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, covering exactly the API subset the workspace benches use.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched. This shim keeps the ten
//! `harness = false` bench binaries compiling and producing useful
//! wall-clock numbers: each `Bencher::iter` body is warmed up once and
//! then timed for `sample_size` samples, and the mean per-iteration
//! time is printed in a `criterion`-like format. Statistical analysis,
//! HTML reports and regression detection are intentionally out of
//! scope.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver (configuration + group factory).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget (the shim runs at least one warm-up
    /// iteration regardless).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// Per-iteration work declared by a benchmark so results can be
/// reported as a rate, mirroring criterion's `Throughput`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration (binary-prefixed report).
    Bytes(u64),
    /// Bytes processed per iteration (decimal-prefixed report).
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

impl Throughput {
    /// Renders the rate achieved at `nanos_per_iter` in criterion's
    /// `thrpt:` style.
    fn rate(&self, nanos_per_iter: f64) -> String {
        let (count, unit) = match self {
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (*n, "B"),
            Throughput::Elements(n) => (*n, "elem"),
        };
        let per_sec = count as f64 / (nanos_per_iter / 1e9).max(1e-12);
        if per_sec >= 1e9 {
            format!("{:.3} G{unit}/s", per_sec / 1e9)
        } else if per_sec >= 1e6 {
            format!("{:.3} M{unit}/s", per_sec / 1e6)
        } else if per_sec >= 1e3 {
            format!("{:.3} K{unit}/s", per_sec / 1e3)
        } else {
            format!("{per_sec:.1} {unit}/s")
        }
    }
}

/// A named benchmark identifier (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declares the per-iteration work of subsequent benchmarks in this
    /// group; their reports gain a `thrpt:` column.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark closure under this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            samples,
            self.criterion.measurement_time,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Runs one parameterized benchmark closure under this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            samples,
            self.criterion.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (accepted for API compatibility; no-op).
    pub fn finish(&mut self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`, accumulating the total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // One warm-up sample, also used to pick an iteration count that
    // roughly fills the measurement budget across all samples.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter = warm.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.as_nanos() / samples.max(1) as u128;
    let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let mean_nanos = total.as_nanos() as f64 / total_iters.max(1) as f64;
    match throughput {
        Some(t) => println!(
            "{label:<48} time: {:<12} thrpt: {}",
            format_nanos(mean_nanos),
            t.rate(mean_nanos)
        ),
        None => println!("{label:<48} time: {}", format_nanos(mean_nanos)),
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut runs = 0u64;
        let mut group = c.benchmark_group("shim");
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0, "closure executed at least once");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2));
        let mut seen = 0i64;
        c.benchmark_group("shim").sample_size(2).bench_with_input(
            BenchmarkId::new("id", 7),
            &41i64,
            |b, &x| b.iter(|| seen = x + 1),
        );
        assert_eq!(seen, 42);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("profile", 10).to_string(), "profile/10");
    }

    #[test]
    fn throughput_rates_pick_units() {
        // 1000 elements in 1 µs = 1 Gelem/s.
        assert_eq!(Throughput::Elements(1000).rate(1_000.0), "1.000 Gelem/s");
        // 1 byte per second.
        assert_eq!(Throughput::Bytes(1).rate(1e9), "1.0 B/s");
        assert!(Throughput::BytesDecimal(500).rate(1e6).ends_with("KB/s"));
    }

    #[test]
    fn throughput_group_still_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2));
        let mut runs = 0u64;
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.bench_function("rate", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn format_nanos_picks_units() {
        assert!(format_nanos(12.0).ends_with("ns"));
        assert!(format_nanos(12_000.0).ends_with("µs"));
        assert!(format_nanos(12_000_000.0).ends_with("ms"));
        assert!(format_nanos(2e9).ends_with(" s"));
    }
}
