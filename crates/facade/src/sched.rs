//! Schedule robustness harness: record/replay determinism checking,
//! chaos fuzzing across seeds, and delta-debugging of failing schedules.
//!
//! drms is a schedule-sensitive metric — a read counts when its location
//! was last written by another thread or the kernel, so the interleaving
//! the scheduler produced *is* part of the measurement. This module turns
//! that from a threat into a tool:
//!
//! * [`record_run`] captures a run's full [`Schedule`] alongside its
//!   profile and merged event stream;
//! * [`check_replay_determinism`] replays the recording strictly and
//!   verifies the event stream is bit-identical and the serialized drms
//!   report byte-identical — the reproducibility contract of the replay
//!   policy;
//! * [`chaos_scan`] profiles the same program under N chaos seeds and
//!   aggregates the per-routine drms spread
//!   ([`drms_core::drms_variance`]);
//! * [`shrink_failing_schedule`] delta-debugs a failing schedule down to
//!   a minimal set of forced preemption points that still reproduces the
//!   same failure class, using relaxed replay.

use drms_core::{report_io, DrmsConfig, DrmsProfiler, VarianceReport};
use drms_trace::{codec, merge_traces};
use drms_vm::{
    MultiTool, NullTool, Program, RunConfig, RunError, SchedDecision, SchedPolicy, Schedule, Tool,
    TraceRecorder, Vm,
};
use std::sync::Arc;

use crate::ProfileOutcome;

/// A profiled run together with the schedule that produced it and the
/// canonical serializations used for byte-level comparison.
#[derive(Clone, Debug)]
pub struct RecordedRun {
    /// Profile, stats and abort reason (if any) of the run.
    pub outcome: ProfileOutcome,
    /// Every scheduling decision of the run.
    pub schedule: Arc<Schedule>,
    /// The merged instrumentation event stream, in the trace text codec.
    pub events: String,
    /// The drms report, in the report text format.
    pub report_text: String,
}

impl RecordedRun {
    /// FNV-1a fingerprint of the serialized report — equal fingerprints
    /// of two runs mean byte-identical reports.
    pub fn report_fingerprint(&self) -> u64 {
        fnv1a(self.report_text.as_bytes())
    }

    /// FNV-1a fingerprint of the serialized event stream.
    pub fn events_fingerprint(&self) -> u64 {
        fnv1a(self.events.as_bytes())
    }
}

/// FNV-1a hash of `bytes` — the workspace's cheap, dependency-free
/// fingerprint for byte-identity checks (reports, event streams, merged
/// sweep output).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs `program` under `config` with full instrumentation (drms
/// profiler + trace recorder) and schedule recording, regardless of the
/// policy in `config`.
///
/// # Errors
/// Only setup failures ([`RunError::Validate`],
/// [`RunError::ScheduleMissing`]) are returned as `Err`; run-time aborts
/// land in [`ProfileOutcome::error`] with the partial profile and the
/// schedule up to the failure point preserved.
pub fn record_run(program: &Program, config: &RunConfig) -> Result<RecordedRun, RunError> {
    let config = RunConfig {
        record_sched: true,
        ..config.clone()
    };
    let mut profiler = DrmsProfiler::new(DrmsConfig::full());
    let mut recorder = TraceRecorder::new();
    let mut vm = Vm::new(program, config)?;
    let (error, shadow_bytes, metrics) = {
        let mut fan = MultiTool::new();
        fan.push(&mut profiler).push(&mut recorder);
        let error = vm.run(&mut fan).err();
        let mut metrics = vm.metrics();
        fan.observe_metrics(&mut metrics);
        (error, fan.shadow_bytes(), metrics)
    };
    let stats = vm.stats().clone();
    let schedule = Arc::new(
        vm.take_recorded_schedule()
            .expect("record_sched was set, so a schedule was recorded"),
    );
    let report = profiler.into_report();
    let report_text = report_io::to_text(&report);
    let events = codec::to_text(&merge_traces(recorder.into_traces()));
    Ok(RecordedRun {
        outcome: ProfileOutcome {
            report,
            stats,
            error,
            schedule: None,
            shadow_bytes,
            metrics,
        },
        schedule,
        events,
        report_text,
    })
}

/// Replays `schedule` against `program` with full instrumentation.
/// Strict mode (`relaxed = false`) aborts with
/// [`RunError::ScheduleDiverged`] if the guest does not follow the
/// recording; relaxed mode follows the schedule as closely as the guest
/// allows (the shrinker's mode).
///
/// # Errors
/// Same contract as [`record_run`].
pub fn replay_run(
    program: &Program,
    base: &RunConfig,
    schedule: Arc<Schedule>,
    relaxed: bool,
) -> Result<RecordedRun, RunError> {
    let config = RunConfig {
        policy: SchedPolicy::Replay { relaxed },
        replay: Some(schedule),
        ..base.clone()
    };
    record_run(program, &config)
}

/// The verdict of [`check_replay_determinism`]: a recorded run and its
/// strict replay, side by side.
#[derive(Clone, Debug)]
pub struct DeterminismCheck {
    /// The original (recording) run.
    pub recorded: RecordedRun,
    /// The strict replay of its schedule.
    pub replayed: RecordedRun,
}

impl DeterminismCheck {
    /// Whether the replayed event stream is bit-identical.
    pub fn events_identical(&self) -> bool {
        self.recorded.events == self.replayed.events
    }

    /// Whether the serialized drms reports are byte-identical.
    pub fn reports_identical(&self) -> bool {
        self.recorded.report_text == self.replayed.report_text
    }

    /// Whether both runs ended the same way (both completed, or both
    /// aborted with the same error).
    pub fn outcomes_match(&self) -> bool {
        self.recorded.outcome.error == self.replayed.outcome.error
    }

    /// The full reproducibility contract: identical events, identical
    /// report bytes, identical outcome.
    pub fn holds(&self) -> bool {
        self.events_identical() && self.reports_identical() && self.outcomes_match()
    }
}

/// Records a run of `program` under `config`'s policy, then strictly
/// replays the recorded schedule and compares the two runs byte for
/// byte. [`DeterminismCheck::holds`] failing indicates a replay bug (or
/// nondeterminism outside the scheduler's control).
///
/// # Errors
/// Setup failures only, as in [`record_run`].
pub fn check_replay_determinism(
    program: &Program,
    config: &RunConfig,
) -> Result<DeterminismCheck, RunError> {
    let recorded = record_run(program, config)?;
    let replayed = replay_run(program, config, Arc::clone(&recorded.schedule), false)?;
    Ok(DeterminismCheck { recorded, replayed })
}

/// One run of a [`chaos_scan`].
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// The chaos seed of this run.
    pub seed: u64,
    /// Profile, stats and abort reason (if any).
    pub outcome: ProfileOutcome,
    /// The recorded schedule — a ready-made repro when the run failed.
    pub schedule: Arc<Schedule>,
}

/// Result of fuzzing a program's scheduler across several chaos seeds.
#[derive(Clone, Debug)]
pub struct ChaosScan {
    /// One entry per seed, in input order.
    pub runs: Vec<ChaosRun>,
    /// Per-routine drms spread across the *completed* runs.
    pub variance: VarianceReport,
}

impl ChaosScan {
    /// The runs that aborted, i.e. the seeds that found a failure.
    pub fn failures(&self) -> impl Iterator<Item = &ChaosRun> {
        self.runs.iter().filter(|r| r.outcome.error.is_some())
    }

    /// Number of runs that completed normally.
    pub fn completed(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.outcome.error.is_none())
            .count()
    }
}

/// Profiles `program` once per seed under [`SchedPolicy::Chaos`],
/// recording every schedule, and aggregates the per-routine drms spread
/// over the completed runs ([`drms_core::drms_variance`]).
///
/// Aborting seeds are kept in [`ChaosScan::runs`] (with their recorded
/// schedules as repros) but excluded from the variance aggregation:
/// a partial profile's terminal drms says nothing about spread.
///
/// # Errors
/// Setup failures only, as in [`record_run`].
pub fn chaos_scan(
    program: &Program,
    base: &RunConfig,
    seeds: &[u64],
) -> Result<ChaosScan, RunError> {
    let mut runs = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let config = RunConfig {
            policy: SchedPolicy::Chaos { seed },
            record_sched: true,
            replay: None,
            ..base.clone()
        };
        let mut profiler = DrmsProfiler::new(DrmsConfig::full());
        let mut vm = Vm::new(program, config)?;
        let error = vm.run(&mut profiler).err();
        let stats = vm.stats().clone();
        let shadow_bytes = profiler.shadow_bytes();
        let mut metrics = vm.metrics();
        profiler.observe_metrics(&mut metrics);
        let schedule = Arc::new(
            vm.take_recorded_schedule()
                .expect("record_sched was set, so a schedule was recorded"),
        );
        runs.push(ChaosRun {
            seed,
            outcome: ProfileOutcome {
                report: profiler.into_report(),
                stats,
                error,
                schedule: None,
                shadow_bytes,
                metrics,
            },
            schedule,
        });
    }
    let completed: Vec<_> = runs
        .iter()
        .filter(|r| r.outcome.error.is_none())
        .map(|r| r.outcome.report.clone())
        .collect();
    let variance = drms_core::drms_variance(&completed);
    Ok(ChaosScan { runs, variance })
}

/// Upper bound on replay attempts one shrink is allowed to spend.
const MAX_SHRINK_ATTEMPTS: usize = 512;

/// The result of shrinking a failing schedule.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimized schedule: relaxed-replaying it still reproduces
    /// the failure class.
    pub minimized: Schedule,
    /// Forced preemption points in the input schedule.
    pub original_points: usize,
    /// Forced preemption points in the minimized schedule.
    pub minimized_points: usize,
    /// The error the minimized schedule reproduces (same variant as the
    /// target, details may differ).
    pub error: RunError,
    /// Replay attempts spent.
    pub attempts: usize,
}

/// Delta-debugs (ddmin) `schedule` down to a locally minimal decision
/// list whose relaxed replay still fails with the same [`RunError`]
/// *variant* as `target` (payloads such as the exact wait-graph may
/// differ). Returns `None` if the input schedule does not reproduce the
/// failure class in the first place.
///
/// Relaxed replay makes arbitrary sub-schedules meaningful: decisions
/// naming non-runnable threads are skipped, and once the schedule is
/// exhausted the scheduler falls back to non-preemptive round-robin —
/// so dropping a chunk of decisions asks "does the failure still happen
/// without these forced preemptions?", which is exactly the ddmin test.
pub fn shrink_failing_schedule(
    program: &Program,
    base: &RunConfig,
    schedule: &Schedule,
    target: &RunError,
) -> Option<ShrinkOutcome> {
    let attempts = std::cell::Cell::new(0usize);
    let reproduce = |decisions: &[SchedDecision]| -> Option<RunError> {
        attempts.set(attempts.get() + 1);
        let candidate = Arc::new(Schedule {
            quantum: schedule.quantum,
            decisions: decisions.to_vec(),
        });
        let config = RunConfig {
            policy: SchedPolicy::Replay { relaxed: true },
            replay: Some(candidate),
            record_sched: false,
            ..base.clone()
        };
        let err = match Vm::new(program, config) {
            Ok(mut vm) => vm.run(&mut NullTool).err()?,
            Err(e) => e,
        };
        (std::mem::discriminant(&err) == std::mem::discriminant(target)).then_some(err)
    };

    let mut current = schedule.decisions.clone();
    let mut error = reproduce(&current)?;

    // Classic ddmin over the decision list: try dropping ever-finer
    // chunks; keep any complement that still reproduces.
    let mut n = 2usize;
    while current.len() >= 2 && attempts.get() < MAX_SHRINK_ATTEMPTS {
        let chunk = current.len().div_ceil(n);
        let mut reduced = None;
        for i in 0..n {
            let lo = i * chunk;
            if lo >= current.len() {
                break;
            }
            let hi = ((i + 1) * chunk).min(current.len());
            let complement: Vec<SchedDecision> = current[..lo]
                .iter()
                .chain(&current[hi..])
                .copied()
                .collect();
            if let Some(err) = reproduce(&complement) {
                reduced = Some((complement, err));
                break;
            }
            if attempts.get() >= MAX_SHRINK_ATTEMPTS {
                break;
            }
        }
        if let Some((complement, err)) = reduced {
            current = complement;
            error = err;
            n = 2.max(n - 1);
        } else {
            if n >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }

    let minimized = Schedule {
        quantum: schedule.quantum,
        decisions: current,
    };
    Some(ShrinkOutcome {
        original_points: schedule.preemption_points(),
        minimized_points: minimized.preemption_points(),
        minimized,
        error,
        attempts: attempts.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_workloads::patterns;

    #[test]
    fn every_policy_is_deterministic_under_a_fixed_seed() {
        let w = patterns::producer_consumer(8);
        for policy in [
            SchedPolicy::RoundRobin,
            SchedPolicy::Random { seed: 11 },
            SchedPolicy::Chaos { seed: 11 },
        ] {
            let config = RunConfig {
                policy,
                ..w.run_config()
            };
            let a = record_run(&w.program, &config).unwrap();
            let b = record_run(&w.program, &config).unwrap();
            assert_eq!(a.events, b.events, "{policy:?}: event streams differ");
            assert_eq!(
                a.report_text, b.report_text,
                "{policy:?}: drms reports differ"
            );
            assert_eq!(a.schedule, b.schedule, "{policy:?}: schedules differ");
            assert_eq!(a.report_fingerprint(), b.report_fingerprint());
            assert_eq!(a.events_fingerprint(), b.events_fingerprint());
        }
    }

    #[test]
    fn replaying_a_chaos_recording_reproduces_the_run_byte_for_byte() {
        let w = patterns::producer_consumer(10);
        for seed in [1u64, 7, 42] {
            let config = RunConfig {
                policy: SchedPolicy::Chaos { seed },
                ..w.run_config()
            };
            let check = check_replay_determinism(&w.program, &config).unwrap();
            assert!(
                check.events_identical(),
                "seed {seed}: event streams differ"
            );
            assert!(check.reports_identical(), "seed {seed}: reports differ");
            assert!(check.outcomes_match(), "seed {seed}: outcomes differ");
            assert!(check.holds());
        }
    }

    #[test]
    fn strict_replay_reproduces_a_deadlocking_chaos_run() {
        let w = patterns::lock_order_inversion(6);
        let seed = (0..64)
            .find(|&seed| {
                let config = RunConfig {
                    policy: SchedPolicy::Chaos { seed },
                    ..w.run_config()
                };
                record_run(&w.program, &config)
                    .unwrap()
                    .outcome
                    .error
                    .is_some()
            })
            .expect("some chaos seed deadlocks the lock-order inversion");
        let config = RunConfig {
            policy: SchedPolicy::Chaos { seed },
            ..w.run_config()
        };
        let check = check_replay_determinism(&w.program, &config).unwrap();
        assert!(matches!(
            check.recorded.outcome.error,
            Some(RunError::Deadlock { .. })
        ));
        assert!(check.holds(), "a failing run must replay exactly too");
    }

    #[test]
    fn chaos_scan_collects_failures_and_variance() {
        let w = patterns::lock_order_inversion(6);
        let seeds: Vec<u64> = (0..16).collect();
        let scan = chaos_scan(&w.program, &w.run_config(), &seeds).unwrap();
        assert_eq!(scan.runs.len(), seeds.len());
        assert!(scan.failures().count() >= 1, "no seed found the deadlock");
        assert!(scan.completed() >= 1, "every seed deadlocked");
        assert_eq!(scan.variance.runs, scan.completed());
        for f in scan.failures() {
            assert!(
                !f.schedule.is_empty(),
                "failures ship a replayable schedule"
            );
        }
    }

    #[test]
    fn shrinker_reduces_a_deadlock_schedule_to_fewer_preemption_points() {
        let w = patterns::lock_order_inversion(6);
        let seeds: Vec<u64> = (0..64).collect();
        let scan = chaos_scan(&w.program, &w.run_config(), &seeds).unwrap();
        let failing = scan
            .failures()
            .max_by_key(|r| r.schedule.preemption_points())
            .expect("some chaos seed deadlocks");
        let target = failing.outcome.error.clone().expect("failure has an error");
        let shrink =
            shrink_failing_schedule(&w.program, &w.run_config(), &failing.schedule, &target)
                .expect("the recorded schedule reproduces its own failure");
        assert!(
            matches!(shrink.error, RunError::Deadlock { .. }),
            "minimized schedule fails with the same variant: {:?}",
            shrink.error
        );
        assert!(
            shrink.minimized_points < shrink.original_points,
            "shrinker must strictly reduce preemption points ({} -> {})",
            shrink.original_points,
            shrink.minimized_points
        );
        assert!(shrink.minimized.len() <= failing.schedule.len());
        assert!(shrink.attempts >= 1);
    }

    #[test]
    fn shrinker_rejects_a_schedule_that_does_not_reproduce() {
        let w = patterns::producer_consumer(4);
        // A healthy run's schedule cannot reproduce a deadlock.
        let recorded = record_run(&w.program, &w.run_config()).unwrap();
        assert!(recorded.outcome.error.is_none());
        let target = RunError::Deadlock {
            blocked: Vec::new(),
        };
        assert!(
            shrink_failing_schedule(&w.program, &w.run_config(), &recorded.schedule, &target)
                .is_none()
        );
    }
}
