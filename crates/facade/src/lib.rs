//! `drms` — input-sensitive profiling with dynamic workloads.
//!
//! A from-scratch Rust reproduction of the CGO 2014 paper *Estimating the
//! Empirical Cost Function of Routines with Dynamic Workloads*: the
//! **dynamic read memory size (drms)** metric, the read/write
//! timestamping profiling algorithm that computes it, and everything the
//! paper's evaluation rests on — an instrumented guest VM standing in for
//! the Valgrind substrate, comparison tools, benchmark workloads, and
//! analysis/fit machinery for empirical cost functions.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`trace`] | event model, per-thread traces, merging, replay |
//! | [`vm`] | guest IR, program builder, interpreter, kernel model, tools |
//! | [`core`] | [`core::DrmsProfiler`], [`core::RmsProfiler`], [`core::NaiveProfiler`], profiles |
//! | [`tools`] | memcheck-, callgrind-, helgrind-like comparison tools |
//! | [`workloads`] | producer/consumer, stream reader, sorting, minidb, imgpipe, PARSEC/OMP-like suites |
//! | [`analysis`] | cost plots, model fitting, paper metrics, renderers |
//!
//! # Quick start
//!
//! ```
//! use drms::prelude::*;
//!
//! // The paper's Figure 3 pattern: a routine that streams data through
//! // a two-cell buffer. rms sees 1 input cell; drms sees all of them.
//! let w = drms::workloads::patterns::stream_reader(16);
//! let outcome = ProfileSession::workload(&w).run().unwrap();
//! assert!(!outcome.is_partial());
//! let p = outcome.report.merged_routine(w.focus.unwrap());
//! assert_eq!(p.rms_plot().last().unwrap().0, 1);
//! assert_eq!(p.drms_plot().last().unwrap().0, 16);
//! ```

pub mod error;
pub mod sched;
pub mod session;

pub use drms_analysis as analysis;
pub use drms_core as core;
pub use drms_tools as tools;
pub use drms_trace as trace;
pub use drms_vm as vm;
pub use drms_workloads as workloads;

pub use error::Error;
pub use session::ProfileSession;

use drms_core::{DrmsConfig, ProfileReport};
use drms_trace::{Metrics, Schedule};
use drms_vm::{Program, RunConfig, RunError, RunStats};
use drms_workloads::Workload;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::error::Error;
    pub use crate::session::ProfileSession;
    pub use crate::ProfileOutcome;
    pub use drms_analysis::{
        best_fit, CostPlot, FitResult, InputMetric, Measurement, Model, OverheadTable,
    };
    pub use drms_core::{
        DrmsConfig, DrmsProfiler, InputBreakdown, NaiveProfiler, ProfileReport, RmsProfiler,
        RoutineProfile,
    };
    pub use drms_trace::{
        Addr, Event, EventSink, HostFaultPlan, HostIo, Metrics, RoutineId, Schedule, ShardSet,
        ShardWriter, ThreadId, TimedEvent,
    };
    pub use drms_vm::{
        replay_shards_into, run_program, run_program_with, BatchKind, DecodeMode, DecodeStats,
        DecodedProgram, Device, EventBatch, FaultPlan, NullTool, Operand, Program, ProgramBuilder,
        RunConfig, RunStats, SchedPolicy, ShardRecorder, SyscallNo, Tool, Vm,
    };
    pub use drms_workloads::Workload;
}

/// Extracts the guest error from a [`ProfileSession::run`] failure.
///
/// The session only fails at setup time, and setup failures are always
/// guest [`RunError`]s — this keeps the legacy wrappers' signatures.
fn setup_error(e: Error) -> RunError {
    match e {
        Error::Run(e) => e,
        other => unreachable!("session setup cannot fail with {other}"),
    }
}

/// Profiles `program` under `config` with the full drms metric, returning
/// the thread-sensitive profile report and the run statistics.
///
/// **Deprecated:** use the [`ProfileSession`] builder, which exposes the
/// same pipeline plus faults, scheduling, dispatch/batching knobs, extra
/// tools and partial profiles; this wrapper remains for source
/// compatibility only.
///
/// # Errors
/// Propagates any guest [`RunError`].
///
/// # Example
/// ```
/// use drms::prelude::*;
///
/// let mut pb = ProgramBuilder::new();
/// let g = pb.global(4);
/// let main = pb.function("main", 0, |f| {
///     let _ = f.load(g.raw() as i64, 0);
///     f.ret(None);
/// });
/// let program = pb.finish(main).unwrap();
/// let outcome = ProfileSession::new(&program).run().unwrap();
/// assert!(outcome.stats.basic_blocks > 0);
/// assert!(!outcome.report.is_empty());
/// ```
#[deprecated(since = "0.8.0", note = "use the `ProfileSession` builder")]
pub fn profile(
    program: &Program,
    config: RunConfig,
) -> Result<(ProfileReport, RunStats), RunError> {
    #[allow(deprecated)]
    profile_with(program, config, DrmsConfig::full())
}

/// Like [`profile`], with an explicit [`DrmsConfig`] (e.g. external input
/// only, or a small renumbering limit).
///
/// **Deprecated** wrapper over [`ProfileSession`]; see [`profile`].
#[deprecated(
    since = "0.8.0",
    note = "use `ProfileSession::new(program).config(config).drms(drms)`"
)]
pub fn profile_with(
    program: &Program,
    config: RunConfig,
    drms: DrmsConfig,
) -> Result<(ProfileReport, RunStats), RunError> {
    ProfileSession::new(program)
        .config(config)
        .drms(drms)
        .run()
        .map_err(setup_error)?
        .into_parts()
}

/// Outcome of a guest run that is allowed to abort: whatever profile
/// data was collected up to the failure point, plus the failure itself.
///
/// Produced by [`ProfileSession::run`] (and the legacy
/// [`profile_partial`]). When `error` is `Some`, the report covers every
/// activation observed before the abort (in-flight activations are
/// flushed at their last observed cost) and `stats` reflect the work
/// actually executed — including any injected-fault counters.
#[derive(Clone, Debug)]
pub struct ProfileOutcome {
    /// The (possibly partial) profile report.
    pub report: ProfileReport,
    /// Finalized statistics of the run, complete or not.
    pub stats: RunStats,
    /// The abort reason, or `None` if the guest ran to completion.
    pub error: Option<RunError>,
    /// The recorded schedule, when the session asked for one
    /// ([`ProfileSession::record_sched`]); `None` otherwise.
    pub schedule: Option<Schedule>,
    /// Host bytes of analysis metadata (shadow memories, profile tables)
    /// held by the profiler and any extra tools, sampled after the run.
    pub shadow_bytes: u64,
    /// The run's observability registry: VM event tallies, scheduler
    /// and kernel counters, shadow-memory cache pressure and per-tool
    /// gauges ([`Tool::observe_metrics`](drms_vm::Tool::observe_metrics)).
    /// Deterministic — same program + seed + schedule gives a
    /// byte-identical [`Metrics::to_json`](drms_trace::Metrics::to_json).
    pub metrics: Metrics,
}

impl ProfileOutcome {
    /// Whether the guest aborted and the report is a partial profile.
    pub fn is_partial(&self) -> bool {
        self.error.is_some()
    }

    /// Splits the outcome into its `(report, stats)` pair, surfacing a
    /// guest abort as the error it is — the legacy all-or-nothing
    /// contract, for callers that have no use for partial profiles.
    ///
    /// # Errors
    /// The abort reason, when the guest did not run to completion.
    pub fn into_parts(self) -> Result<(ProfileReport, RunStats), RunError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok((self.report, self.stats)),
        }
    }
}

/// Like [`profile_with`], but a guest abort (watchdog, deadlock, corrupt
/// stack) does not discard the profile: the data gathered so far is
/// flushed and returned alongside the error.
///
/// **Deprecated:** this is [`ProfileSession::run`]'s native contract;
/// use the builder directly.
///
/// # Errors
/// Only setup failures (program validation) are returned as `Err`;
/// run-time aborts land in [`ProfileOutcome::error`].
#[deprecated(
    since = "0.8.0",
    note = "`ProfileSession::run` already returns a partial-tolerant `ProfileOutcome`"
)]
pub fn profile_partial(
    program: &Program,
    config: RunConfig,
    drms: DrmsConfig,
) -> Result<ProfileOutcome, RunError> {
    ProfileSession::new(program)
        .config(config)
        .drms(drms)
        .run()
        .map_err(setup_error)
}

/// Profiles a prebuilt [`Workload`] with its own devices and defaults.
///
/// **Deprecated** wrapper over [`ProfileSession::workload`]; see
/// [`profile`].
///
/// # Errors
/// Propagates any guest [`RunError`].
#[deprecated(since = "0.8.0", note = "use `ProfileSession::workload(w)`")]
pub fn profile_workload(w: &Workload) -> Result<(ProfileReport, RunStats), RunError> {
    #[allow(deprecated)]
    profile(&w.program, w.run_config())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_analysis::{CostPlot, InputMetric, Model};

    #[test]
    fn end_to_end_minidb_fit() {
        let sizes = [16, 32, 64, 128, 256, 512];
        let w = drms_workloads::minidb::minidb_scaling(&sizes);
        let report = ProfileSession::workload(&w).run().unwrap().report;
        let p = report.merged_routine(w.focus.unwrap());
        let drms_fit = CostPlot::of(&p, InputMetric::Drms).fit(0.02);
        assert_eq!(
            drms_fit.model,
            Model::Linear,
            "drms reveals mysql_select's linear cost: {drms_fit}"
        );
    }

    #[test]
    fn watchdog_abort_yields_a_partial_profile() {
        let w = drms_workloads::minidb::minidb_scaling(&[64, 128, 256]);
        let config = RunConfig {
            max_instructions: 20_000,
            ..w.run_config()
        };
        let outcome = ProfileSession::new(&w.program)
            .config(config)
            .run()
            .unwrap();
        assert!(outcome.is_partial(), "the budget is too small to finish");
        assert!(matches!(
            outcome.error,
            Some(RunError::InstructionLimit { .. })
        ));
        assert!(
            !outcome.report.is_empty(),
            "activations before the abort are flushed into the report"
        );
        assert!(outcome.stats.instructions >= 20_000);
        // The partial profile serializes and parses like a complete one.
        let text = drms_core::report_io::to_text(&outcome.report);
        let back = drms_core::report_io::from_text(&text).unwrap();
        assert_eq!(back, outcome.report);
    }

    // The deprecated wrappers must keep producing exactly what the
    // session produces until they are removed.
    #[test]
    #[allow(deprecated)]
    fn completed_run_outcome_matches_legacy_wrappers() {
        let w = drms_workloads::patterns::stream_reader(8);
        let (report, stats) = profile_workload(&w).unwrap();
        let partial = profile_partial(&w.program, w.run_config(), DrmsConfig::full()).unwrap();
        let outcome = ProfileSession::workload(&w).run().unwrap();
        assert!(!outcome.is_partial());
        assert_eq!(outcome.report, report);
        assert_eq!(outcome.stats, stats);
        assert_eq!(partial.report, report);
        assert_eq!(partial.stats, stats);
    }

    #[test]
    fn profile_with_static_config_equals_rms() {
        let w = drms_workloads::patterns::stream_reader(10);
        let full = ProfileSession::workload(&w).run().unwrap().report;
        let stat = ProfileSession::workload(&w)
            .drms(DrmsConfig::static_only())
            .run()
            .unwrap()
            .report;
        let f = w.focus.unwrap();
        assert_eq!(
            stat.merged_routine(f).drms_plot(),
            full.merged_routine(f).rms_plot()
        );
    }
}
