//! The workspace-wide error type.
//!
//! CLI and sweep code used to match on crate-specific error enums
//! (`RunError` here, `KernelError` there, three different parse errors).
//! [`Error`] wraps them all behind one type with proper
//! [`source`](std::error::Error::source) chains, so callers can `?` any
//! workspace result and still drill down to the original failure when
//! they need to.

use drms_core::report_io::ParseReportError;
use drms_trace::hostio::HostFaultSpecError;
use drms_trace::journal::ParseJournalError;
use drms_trace::obs::MergeError;
use drms_trace::sched::ParseSchedError;
use drms_trace::ParseTraceError;
use drms_vm::{FaultSpecError, KernelError, RunError};
use std::fmt;

/// Any failure a `drms` profiling session, sweep, or tool run can hit.
///
/// Each variant wraps the underlying crate-specific error and exposes it
/// via [`std::error::Error::source`], so `anyhow`-style chain printers
/// and plain `{}`/`{:#}` formatting both work.
///
/// # Example
/// ```
/// use std::error::Error as _;
/// let inner = drms::vm::RunError::BadAddress { value: -1 };
/// let err = drms::Error::from(inner);
/// assert!(err.to_string().contains("guest run failed"));
/// assert!(err.source().unwrap().to_string().contains("address"));
/// ```
#[derive(Debug)]
pub enum Error {
    /// The guest aborted (deadlock, bad address, watchdog, …).
    Run(RunError),
    /// A kernel/device operation failed outside a guest context.
    Kernel(KernelError),
    /// A serialized event trace failed to parse.
    Trace(ParseTraceError),
    /// A serialized schedule failed to parse.
    Sched(ParseSchedError),
    /// A serialized profile report failed to parse.
    Report(ParseReportError),
    /// A fault-plan spec string was malformed.
    Faults(FaultSpecError),
    /// A host-fault spec string (`--host-faults`) was malformed.
    HostFaults(HostFaultSpecError),
    /// A checkpoint journal was unusable (unreadable header, spec
    /// mismatch against the resuming sweep, …). Damaged *records* are
    /// not errors — the lossy salvage drops them and the supervisor
    /// re-runs the lost cells.
    Journal(ParseJournalError),
    /// Two metrics registries disagreed on a histogram's bucket layout
    /// while being merged (e.g. aggregating jobs produced by different
    /// builds in a long-lived service).
    Metrics(MergeError),
    /// Reading or writing an artifact (report, schedule, JSON) failed.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Run(_) => write!(f, "guest run failed"),
            Error::Kernel(_) => write!(f, "kernel operation failed"),
            Error::Trace(_) => write!(f, "malformed event trace"),
            Error::Sched(_) => write!(f, "malformed schedule"),
            Error::Report(_) => write!(f, "malformed profile report"),
            Error::Faults(_) => write!(f, "malformed fault plan"),
            Error::HostFaults(_) => write!(f, "malformed host fault plan"),
            Error::Journal(_) => write!(f, "unusable checkpoint journal"),
            Error::Metrics(_) => write!(f, "metrics merge failed"),
            Error::Io(_) => write!(f, "artifact I/O failed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Run(e) => Some(e),
            Error::Kernel(e) => Some(e),
            Error::Trace(e) => Some(e),
            Error::Sched(e) => Some(e),
            Error::Report(e) => Some(e),
            Error::Faults(e) => Some(e),
            Error::HostFaults(e) => Some(e),
            Error::Journal(e) => Some(e),
            Error::Metrics(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<RunError> for Error {
    fn from(e: RunError) -> Self {
        Error::Run(e)
    }
}

impl From<KernelError> for Error {
    fn from(e: KernelError) -> Self {
        Error::Kernel(e)
    }
}

impl From<ParseTraceError> for Error {
    fn from(e: ParseTraceError) -> Self {
        Error::Trace(e)
    }
}

impl From<ParseSchedError> for Error {
    fn from(e: ParseSchedError) -> Self {
        Error::Sched(e)
    }
}

impl From<ParseReportError> for Error {
    fn from(e: ParseReportError) -> Self {
        Error::Report(e)
    }
}

impl From<FaultSpecError> for Error {
    fn from(e: FaultSpecError) -> Self {
        Error::Faults(e)
    }
}

impl From<HostFaultSpecError> for Error {
    fn from(e: HostFaultSpecError) -> Self {
        Error::HostFaults(e)
    }
}

impl From<ParseJournalError> for Error {
    fn from(e: ParseJournalError) -> Self {
        Error::Journal(e)
    }
}

impl From<MergeError> for Error {
    fn from(e: MergeError) -> Self {
        Error::Metrics(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn source_chains_reach_the_original_error() {
        let err: Error = RunError::BadAddress { value: -7 }.into();
        let src = err.source().expect("wrapped error is the source");
        assert!(src.to_string().contains("-7"), "{src}");
        assert!(src.downcast_ref::<RunError>().is_some());
    }

    #[test]
    fn metrics_merge_errors_chain_to_the_bucket_layouts() {
        let mut a = drms_trace::Metrics::new();
        a.observe("h", &[1, 2], 1);
        let mut b = drms_trace::Metrics::new();
        b.observe("h", &[1, 3], 1);
        let err: Error = a.merge(&b).unwrap_err().into();
        assert_eq!(err.to_string(), "metrics merge failed");
        let src = err.source().expect("merge error is the source");
        assert!(
            src.to_string().contains("mismatched bucket bounds"),
            "{src}"
        );
        assert!(src.downcast_ref::<MergeError>().is_some());
    }

    #[test]
    fn io_errors_convert() {
        let err: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert_eq!(err.to_string(), "artifact I/O failed");
        assert!(matches!(err, Error::Io(_)));
    }

    #[test]
    fn every_variant_displays_distinctly() {
        let msgs = [
            Error::from(RunError::BadAddress { value: 0 }).to_string(),
            Error::from(KernelError::BadFd { fd: 1 }).to_string(),
            Error::from(std::io::Error::other("x")).to_string(),
        ];
        for (i, a) in msgs.iter().enumerate() {
            for b in &msgs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
