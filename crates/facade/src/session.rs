//! The unified profiling entry point.
//!
//! [`ProfileSession`] is a builder that collapses the facade's historical
//! `profile` / `profile_partial` / `profile_workload` trio into one
//! configurable pipeline: pick a program, layer on run configuration,
//! drms settings, fault plans, scheduling and extra tools, then
//! [`run`](ProfileSession::run) it. Every run uses the partial-profile
//! contract — a guest abort never discards the data collected before it.
//!
//! When no extra tools are attached, the session drives the VM through
//! the monomorphized fast path (the profiler's event handlers compile to
//! direct calls); attaching tools switches to a
//! [`MultiTool`](drms_vm::MultiTool) fan-out.

use crate::{Error, ProfileOutcome};
use drms_core::{DrmsConfig, DrmsProfiler};
use drms_trace::shard::{ShardWriter, DEFAULT_SPILL_THRESHOLD};
use drms_trace::HostIo;
use drms_vm::{
    DecodeMode, DecodedProgram, EventBatch, FaultPlan, MultiTool, Program, RunConfig, SchedPolicy,
    Schedule, ShardRecorder, Tool, Vm,
};
use drms_workloads::Workload;
use std::path::PathBuf;
use std::sync::Arc;

/// A configurable profiling run over one guest program.
///
/// # Example
/// ```
/// use drms::prelude::*;
///
/// let w = drms::workloads::patterns::stream_reader(16);
/// let outcome = ProfileSession::new(&w.program)
///     .config(w.run_config())
///     .drms(DrmsConfig::full())
///     .run()
///     .unwrap();
/// assert!(!outcome.is_partial());
/// let p = outcome.report.merged_routine(w.focus.unwrap());
/// assert_eq!(p.drms_plot().last().unwrap().0, 16);
/// ```
pub struct ProfileSession<'p, 't> {
    program: &'p Program,
    config: RunConfig,
    drms: DrmsConfig,
    extra: Vec<&'t mut dyn Tool>,
    decoded: Option<Arc<DecodedProgram>>,
    batch_buf: Option<&'t mut EventBatch>,
    trace_dir: Option<PathBuf>,
    spill_threshold: usize,
    trace_io: HostIo,
}

impl<'p, 't> ProfileSession<'p, 't> {
    /// Starts a session over `program` with default run configuration
    /// and the full drms metric.
    pub fn new(program: &'p Program) -> Self {
        ProfileSession {
            program,
            config: RunConfig::default(),
            drms: DrmsConfig::full(),
            extra: Vec::new(),
            decoded: None,
            batch_buf: None,
            trace_dir: None,
            spill_threshold: DEFAULT_SPILL_THRESHOLD,
            trace_io: HostIo::real(),
        }
    }

    /// Starts a session over a prebuilt [`Workload`], adopting its
    /// program, devices and run defaults.
    pub fn workload(w: &'p Workload) -> Self {
        ProfileSession::new(&w.program).config(w.run_config())
    }

    /// Replaces the whole [`RunConfig`] (devices, quantum, budgets, …).
    ///
    /// Call this *before* the targeted setters ([`faults`](Self::faults),
    /// [`sched`](Self::sched), …); it overwrites all of them.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the drms profiler configuration (full, external-only,
    /// static-only, renumbering limits).
    pub fn drms(mut self, drms: DrmsConfig) -> Self {
        self.drms = drms;
        self
    }

    /// Attaches a kernel fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = Some(plan);
        self
    }

    /// Sets the scheduling policy.
    pub fn sched(mut self, policy: SchedPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the guest `Rand` seed (per-thread streams derive from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Caps the run's wall-clock time. Exceeding it aborts with
    /// [`RunError`](drms_vm::RunError)`::DeadlineExceeded` — a partial
    /// outcome like any other guest abort, with a deterministic message
    /// (the configured budget, not the elapsed time).
    pub fn deadline(mut self, budget: std::time::Duration) -> Self {
        self.config.deadline = Some(budget);
        self
    }

    /// Caps the run's executed instructions (the VM watchdog budget).
    pub fn max_instructions(mut self, limit: u64) -> Self {
        self.config.max_instructions = limit;
        self
    }

    /// Records the schedule of this run; it lands in
    /// [`ProfileOutcome::schedule`].
    pub fn record_sched(mut self) -> Self {
        self.config.record_sched = true;
        self
    }

    /// Replays a previously recorded schedule. Strict mode
    /// (`relaxed = false`) aborts on divergence.
    pub fn replay(mut self, schedule: Arc<Schedule>, relaxed: bool) -> Self {
        self.config.policy = SchedPolicy::Replay { relaxed };
        self.config.replay = Some(schedule);
        self
    }

    /// Sets the dispatch mode of the interpreter core: classic
    /// tree-walking ([`DecodeMode::Off`]), pre-decoded basic blocks
    /// ([`DecodeMode::Blocks`]) or pre-decoded blocks with
    /// superinstruction fusion ([`DecodeMode::Fused`], the default).
    ///
    /// All modes produce identical profiles, statistics and traces; they
    /// differ only in speed.
    pub fn decode(mut self, mode: DecodeMode) -> Self {
        self.config.decode = mode;
        self
    }

    /// Sets the capacity of the tool event batch: memory events are
    /// buffered and delivered to tools in groups of up to `n` via
    /// [`Tool::observe_batch`](drms_vm::Tool::observe_batch). `1`
    /// degenerates to per-event delivery. Must be non-zero.
    pub fn event_batch(mut self, n: usize) -> Self {
        self.config.event_batch = n;
        self
    }

    /// Dispatches from a shared pre-decoded image instead of decoding
    /// the program again, so many sessions over one program (a sweep
    /// grid, repeated attempts) pay the decode cost once.
    ///
    /// The image must come from [`DecodedProgram::decode`] over the same
    /// program this session profiles; the run keeps the image's fusion
    /// mode. Ignored when [`decode`](Self::decode) is [`DecodeMode::Off`].
    ///
    /// # Panics
    /// [`run`](Self::run) panics if `decoded` does not structurally
    /// match the session's program.
    pub fn decoded(mut self, decoded: Arc<DecodedProgram>) -> Self {
        self.decoded = Some(decoded);
        self
    }

    /// Lends `buf` to the VM as its event-batch storage for this run;
    /// its (possibly grown) buffers are handed back through the same
    /// reference when the run finishes. A loop of sessions sharing one
    /// buffer this way performs a single batch allocation in total.
    pub fn batch_buffer(mut self, buf: &'t mut EventBatch) -> Self {
        self.batch_buf = Some(buf);
        self
    }

    /// Attaches an extra tool; it observes the identical event stream as
    /// the drms profiler, in insertion order after it.
    pub fn tool(mut self, tool: &'t mut dyn Tool) -> Self {
        self.extra.push(tool);
        self
    }

    /// Spills the instrumentation event stream to per-thread binary
    /// shard files under `dir` (see [`drms_trace::shard`]) while the
    /// run executes. The shards replay offline into any tool —
    /// `repro replay-shards DIR` — reproducing this run's report
    /// byte-for-byte; writer-side `trace.shard.*` counters land in
    /// [`ProfileOutcome::metrics`].
    pub fn trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Buffered bytes per shard before the writer flushes to the host
    /// (default [`DEFAULT_SPILL_THRESHOLD`]). Smaller thresholds bound
    /// memory tighter; larger ones batch host writes harder. Only
    /// meaningful together with [`trace_dir`](Self::trace_dir).
    pub fn spill_threshold(mut self, bytes: usize) -> Self {
        self.spill_threshold = bytes;
        self
    }

    /// Routes shard-trace writes through `io` instead of the real host
    /// — the chaos seam: a seeded fault plan makes ENOSPC / EIO land
    /// mid-shard exactly like on a failing disk.
    pub fn trace_io(mut self, io: HostIo) -> Self {
        self.trace_io = io;
        self
    }

    /// Runs the session.
    ///
    /// A guest abort (watchdog, deadlock, injected fault escalation)
    /// does not discard the profile: data gathered before the failure is
    /// flushed into [`ProfileOutcome::report`] and the abort reason lands
    /// in [`ProfileOutcome::error`].
    ///
    /// # Errors
    /// Only setup failures — program validation, a replay policy without
    /// a schedule, an unusable [`trace_dir`](Self::trace_dir) — and a
    /// shard-trace finalize failure (`Error::Io`: the host faulted while
    /// persisting the spill; the shards keep a salvageable prefix) are
    /// returned as `Err`.
    pub fn run(mut self) -> Result<ProfileOutcome, Error> {
        let mut profiler = DrmsProfiler::new(self.drms);
        let mut shard_rec = match self.trace_dir.take() {
            Some(dir) => {
                let writer = ShardWriter::create(&self.trace_io, &dir, self.spill_threshold)?;
                Some(ShardRecorder::new(writer))
            }
            None => None,
        };
        let mut vm = match self.decoded.take() {
            Some(d) => Vm::with_decoded(self.program, self.config, d)?,
            None => Vm::new(self.program, self.config)?,
        };
        if let Some(buf) = self.batch_buf.as_mut() {
            vm.install_batch(std::mem::take(*buf));
        }
        let (error, shadow_bytes, mut metrics) = if self.extra.is_empty() && shard_rec.is_none() {
            // Single-tool runs stay monomorphized: `T = DrmsProfiler`, so
            // per-event dispatch is direct calls, not a vtable.
            let error = vm.run(&mut profiler).err();
            let mut metrics = vm.metrics();
            profiler.observe_metrics(&mut metrics);
            (error, profiler.shadow_bytes(), metrics)
        } else {
            let mut fan = MultiTool::new();
            fan.push(&mut profiler);
            if let Some(rec) = shard_rec.as_mut() {
                fan.push(rec);
            }
            for t in self.extra {
                fan.push(t);
            }
            let error = vm.run(&mut fan).err();
            let mut metrics = vm.metrics();
            fan.observe_metrics(&mut metrics);
            (error, fan.shadow_bytes(), metrics)
        };
        if let Some(rec) = shard_rec {
            let summary = rec.finish()?;
            summary.observe_metrics(&mut metrics);
        }
        if error.is_some() {
            metrics.inc("run.aborts");
        }
        if let Some(buf) = self.batch_buf {
            *buf = vm.take_batch();
        }
        let stats = vm.stats().clone();
        let schedule = vm.take_recorded_schedule();
        Ok(ProfileOutcome {
            report: profiler.into_report(),
            stats,
            error,
            schedule,
            shadow_bytes,
            metrics,
        })
    }
}

impl std::fmt::Debug for ProfileSession<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileSession")
            .field("config", &self.config)
            .field("extra_tools", &self.extra.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_vm::{NullTool, RunError};

    #[test]
    #[allow(deprecated)]
    fn session_matches_the_legacy_entry_points() {
        let w = drms_workloads::patterns::stream_reader(8);
        let (report, stats) = crate::profile_workload(&w).unwrap();
        let outcome = ProfileSession::workload(&w).run().unwrap();
        assert!(!outcome.is_partial());
        assert_eq!(outcome.report, report);
        assert_eq!(outcome.stats, stats);
    }

    #[test]
    fn extra_tools_observe_the_same_run() {
        let w = drms_workloads::patterns::stream_reader(8);
        let solo = ProfileSession::workload(&w).run().unwrap();
        let mut null = NullTool;
        let fan = ProfileSession::workload(&w).tool(&mut null).run().unwrap();
        assert_eq!(
            solo.report, fan.report,
            "fan-out must not perturb the profile"
        );
        assert_eq!(solo.metrics.audit(), Ok(()));
        assert_eq!(fan.metrics.audit(), Ok(()));
        assert_eq!(
            solo.metrics.counter("vm.events.total"),
            fan.metrics.counter("vm.events.total"),
            "both paths deliver the identical event stream"
        );
        assert_eq!(
            fan.metrics.gauge("tool.nulgrind.shadow_bytes"),
            0,
            "extra tools report under their own names"
        );
        assert!(fan.metrics.gauge("tool.aprof-drms.shadow_bytes") > 0);
    }

    #[test]
    fn outcome_metrics_are_deterministic_and_audited() {
        let w = drms_workloads::patterns::producer_consumer(12);
        let run = || {
            ProfileSession::workload(&w)
                .sched(SchedPolicy::Random { seed: 9 })
                .run()
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.metrics.audit(), Ok(()), "{:?}", a.metrics.audit());
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
        assert_eq!(a.metrics.counter("vm.events.total"), a.stats.events);
        assert_eq!(
            a.metrics.gauge("shadow.bytes"),
            a.shadow_bytes,
            "profiler shadow gauge matches the outcome field"
        );
        assert!(a.metrics.counter("shadow.cache.lookups") > 0);
        assert_eq!(a.metrics.counter("run.aborts"), 0);
    }

    #[test]
    fn aborts_yield_partial_outcomes_not_errors() {
        let w = drms_workloads::minidb::minidb_scaling(&[64, 128, 256]);
        let outcome = ProfileSession::workload(&w)
            .config(RunConfig {
                max_instructions: 20_000,
                ..w.run_config()
            })
            .run()
            .unwrap();
        assert!(outcome.is_partial());
        assert!(matches!(
            outcome.error,
            Some(RunError::InstructionLimit { .. })
        ));
        assert!(!outcome.report.is_empty());
    }

    #[test]
    fn zero_deadline_yields_a_partial_outcome() {
        let w = drms_workloads::patterns::stream_reader(8);
        let outcome = ProfileSession::workload(&w)
            .deadline(std::time::Duration::ZERO)
            .run()
            .unwrap();
        assert!(matches!(
            outcome.error,
            Some(RunError::DeadlineExceeded { millis: 0 })
        ));
    }

    #[test]
    fn max_instructions_setter_arms_the_watchdog() {
        let w = drms_workloads::patterns::stream_reader(64);
        let outcome = ProfileSession::workload(&w)
            .max_instructions(50)
            .run()
            .unwrap();
        assert!(matches!(
            outcome.error,
            Some(RunError::InstructionLimit { limit: 50 })
        ));
    }

    #[test]
    fn record_then_replay_reproduces_the_profile() {
        let w = drms_workloads::patterns::producer_consumer(12);
        let recorded = ProfileSession::workload(&w)
            .sched(SchedPolicy::Chaos { seed: 7 })
            .record_sched()
            .run()
            .unwrap();
        let schedule = Arc::new(recorded.schedule.clone().expect("recorded"));
        let replayed = ProfileSession::workload(&w)
            .replay(schedule, false)
            .run()
            .unwrap();
        assert!(replayed.error.is_none(), "{:?}", replayed.error);
        assert_eq!(replayed.report, recorded.report);
    }

    #[test]
    fn dispatch_and_batching_knobs_do_not_perturb_the_profile() {
        let w = drms_workloads::minidb::minidb_scaling(&[32, 64, 128]);
        let reference = ProfileSession::workload(&w)
            .decode(DecodeMode::Off)
            .event_batch(1)
            .run()
            .unwrap();
        for mode in [DecodeMode::Blocks, DecodeMode::Fused] {
            for batch in [1, 64] {
                let got = ProfileSession::workload(&w)
                    .decode(mode)
                    .event_batch(batch)
                    .run()
                    .unwrap();
                assert_eq!(got.report, reference.report, "{mode:?} batch={batch}");
                assert_eq!(got.stats, reference.stats, "{mode:?} batch={batch}");
            }
        }
    }

    #[test]
    fn shared_decoded_image_and_batch_buffer_are_reused() {
        let w = drms_workloads::patterns::stream_reader(32);
        let image = DecodedProgram::decode(&w.program, DecodeMode::Fused);
        assert!(image.stats().fused() > 0, "fusion finds pairs here");
        let fresh = ProfileSession::workload(&w).run().unwrap();
        let mut buf = EventBatch::default();
        for _ in 0..3 {
            let shared = ProfileSession::workload(&w)
                .decoded(Arc::clone(&image))
                .batch_buffer(&mut buf)
                .run()
                .unwrap();
            assert_eq!(shared.report, fresh.report);
            assert_eq!(shared.stats, fresh.stats);
        }
        assert!(buf.capacity() > 0, "grown storage is handed back");
        assert_eq!(buf.allocations(), 1, "one allocation across three runs");
    }

    #[test]
    fn trace_dir_spill_and_replay_reproduce_the_run() {
        let w = drms_workloads::patterns::producer_consumer(12);
        let dir = std::env::temp_dir().join(format!("drms-session-shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let live = ProfileSession::workload(&w).run().unwrap();
        let spilled = ProfileSession::workload(&w)
            .trace_dir(&dir)
            .spill_threshold(128)
            .run()
            .unwrap();
        assert_eq!(spilled.report, live.report, "spilling must not perturb");
        assert!(spilled.metrics.counter("trace.shard.frames") > 0);
        assert_eq!(spilled.metrics.audit(), Ok(()));

        let set = drms_trace::shard::ShardSet::load(&dir, 2).unwrap();
        assert_eq!(set.dropped, 0);
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        drms_vm::replay_shards_into(&set, &mut prof);
        assert_eq!(
            prof.into_report(),
            live.report,
            "offline replay reproduces the in-memory run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulted_shard_spill_is_a_typed_io_error() {
        let w = drms_workloads::patterns::stream_reader(8);
        let dir = std::env::temp_dir().join(format!("drms-session-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let err = ProfileSession::workload(&w)
            .trace_dir(&dir)
            .spill_threshold(64)
            .trace_io(HostIo::from_spec("write:enospc:once=2").unwrap())
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Io(_)), "{err:?}");
        // Whatever reached the disk is still a salvageable prefix.
        let set = drms_trace::shard::ShardSet::load(&dir, 1).unwrap();
        assert_eq!(set.salvaged + set.dropped, set.total);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_without_schedule_is_a_setup_error() {
        let w = drms_workloads::patterns::stream_reader(4);
        let err = ProfileSession::workload(&w)
            .sched(SchedPolicy::Replay { relaxed: false })
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Run(RunError::ScheduleMissing)));
    }
}
