//! Comparison dynamic-analysis tools sharing the `drms-vm` instrumentation
//! substrate.
//!
//! The paper evaluates `aprof-drms` against four reference Valgrind tools
//! that share one instrumentation infrastructure; this crate provides
//! their analogues over the guest VM so Table 1 and Figure 16 can be
//! regenerated with the same substrate-sharing methodology:
//!
//! * [`drms_vm::NullTool`] — `nulgrind`: subscribes and does nothing;
//! * [`MemcheckTool`] — definedness bits, one shadow byte per cell;
//! * [`CallgrindTool`] — dynamic call graph with inclusive/exclusive
//!   costs, no per-access shadowing;
//! * [`HelgrindTool`] — vector-clock happens-before race detection, the
//!   heavyweight concurrency analysis.
//!
//! The profilers themselves (`drms_core::RmsProfiler` = `aprof`,
//! `drms_core::DrmsProfiler` = `aprof-drms`) live in `drms-core`.

pub mod callgrind;
pub mod helgrind;
pub mod memcheck;

pub use callgrind::{ArcStats, CallgrindTool, RoutineCost};
pub use helgrind::{HelgrindTool, RaceReport};
pub use memcheck::MemcheckTool;
