//! `helgrind`-like happens-before data-race detector.
//!
//! Implements vector-clock race detection over the VM's synchronization
//! vocabulary: semaphores, mutexes, condition variables, spawn and join
//! all induce happens-before edges; every memory cell carries last-write
//! and last-read epochs in a shadow memory. An access racing with a
//! previous unordered access of which at least one is a write is reported
//! once per cell.
//!
//! Among the comparison tools this is the heavyweight one — per-access
//! epoch checks plus per-sync vector-clock joins — matching its position
//! in the paper's Table 1 (helgrind is the slowest tool measured).

use drms_trace::{Addr, EventSink, SyncOp, ThreadId};
use drms_vm::{ShadowMemory, Tool};
use std::collections::HashMap;

/// An epoch: (thread, per-thread clock value). Thread `u16::MAX` means
/// "never accessed".
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Epoch {
    thread: u16,
    clock: u32,
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch {
            thread: u16::MAX,
            clock: 0,
        }
    }
}

/// Per-cell access state: last write/read epochs plus the routine and
/// lock-set under which each access happened (for race diagnostics, as
/// real helgrind records origin contexts), and a reported flag to
/// deduplicate race reports.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
struct CellState {
    write: Epoch,
    read: Epoch,
    /// Routine performing the last write / read (for reports).
    write_origin: u32,
    read_origin: u32,
    /// Hash of the lock set held at the last write / read.
    write_locks: u64,
    read_locks: u64,
    reported: bool,
}

type VectorClock = Vec<u32>;

fn join(into: &mut VectorClock, other: &VectorClock) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (a, &b) in into.iter_mut().zip(other.iter()) {
        *a = (*a).max(b);
    }
}

/// A record of one detected race.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// The racing cell.
    pub addr: Addr,
    /// Thread performing the later access.
    pub second: ThreadId,
    /// Thread that performed the earlier, unordered access.
    pub first: ThreadId,
    /// Whether the later access was a write.
    pub second_is_write: bool,
    /// Routine in which the earlier access happened, if known.
    pub first_origin: Option<drms_trace::RoutineId>,
    /// Routine in which the later access happened, if known.
    pub second_origin: Option<drms_trace::RoutineId>,
}

/// A vector-clock happens-before race detector.
///
/// # Example
/// ```
/// use drms_tools::HelgrindTool;
/// use drms_vm::{ProgramBuilder, run_program, RunConfig, Operand};
///
/// // Two threads store to the same global without synchronization.
/// let mut pb = ProgramBuilder::new();
/// let g = pb.global(1);
/// let w = pb.function("w", 0, |f| { f.store(g.raw() as i64, 0, 1); });
/// let main = pb.function("main", 0, |f| {
///     let t1 = f.spawn(w, &[]);
///     let t2 = f.spawn(w, &[]);
///     f.join(t1);
///     f.join(t2);
/// });
/// let program = pb.finish(main).unwrap();
/// let mut hg = HelgrindTool::new();
/// run_program(&program, RunConfig::default(), &mut hg).unwrap();
/// assert_eq!(hg.race_count(), 1);
/// ```
#[derive(Default)]
pub struct HelgrindTool {
    clocks: Vec<VectorClock>,
    sem_vc: HashMap<u32, VectorClock>,
    mutex_vc: HashMap<u32, VectorClock>,
    cond_vc: HashMap<u32, VectorClock>,
    cells: ShadowMemory<CellState>,
    races: Vec<RaceReport>,
    /// Per-thread call stack (routine ids), for race-report origins.
    stacks: Vec<Vec<u32>>,
    /// Per-thread held-lock-set hash (order-independent xor of ids).
    locksets: Vec<u64>,
}

impl HelgrindTool {
    /// Creates a race detector with no knowledge of any thread.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct racing cells found.
    pub fn race_count(&self) -> u64 {
        self.races.len() as u64
    }

    /// The collected race reports (one per racing cell).
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    fn vc_mut(&mut self, t: ThreadId) -> &mut VectorClock {
        let idx = t.index() as usize;
        while self.clocks.len() <= idx {
            let mut vc = vec![0u32; idx + 1];
            let me = self.clocks.len();
            if me < vc.len() {
                vc[me] = 1;
            }
            self.clocks.push(vc);
        }
        &mut self.clocks[idx]
    }

    fn tick(&mut self, t: ThreadId) {
        let idx = t.index() as usize;
        let vc = self.vc_mut(t);
        if vc.len() <= idx {
            vc.resize(idx + 1, 0);
        }
        vc[idx] += 1;
    }

    /// Whether epoch `e` happens-before the current state of thread `t`.
    fn ordered_before(&mut self, e: Epoch, t: ThreadId) -> bool {
        if e.thread == u16::MAX {
            return true;
        }
        if e.thread as u32 == t.index() {
            return true;
        }
        let vc = self.vc_mut(t);
        let idx = e.thread as usize;
        idx < vc.len() && vc[idx] >= e.clock
    }

    fn epoch_of(&mut self, t: ThreadId) -> Epoch {
        let idx = t.index() as usize;
        let vc = self.vc_mut(t);
        Epoch {
            thread: idx as u16,
            clock: vc[idx],
        }
    }

    fn current_routine(&self, t: ThreadId) -> Option<drms_trace::RoutineId> {
        self.stacks
            .get(t.index() as usize)
            .and_then(|s| s.last())
            .map(|&r| drms_trace::RoutineId::new(r))
    }

    fn access(&mut self, t: ThreadId, addr: Addr, len: u32, is_write: bool) {
        let origin = self
            .stacks
            .get(t.index() as usize)
            .and_then(|s| s.last().copied())
            .unwrap_or(u32::MAX);
        let lockset = self.locksets.get(t.index() as usize).copied().unwrap_or(0);
        for cell in addr.range(len) {
            let mut state = self.cells.get(cell);
            if !state.reported {
                let prior_write_ok = self.ordered_before(state.write, t);
                let prior_read_ok = !is_write || self.ordered_before(state.read, t);
                if !prior_write_ok || !prior_read_ok {
                    let (first, first_origin) = if !prior_write_ok {
                        (state.write.thread, state.write_origin)
                    } else {
                        (state.read.thread, state.read_origin)
                    };
                    state.reported = true;
                    self.races.push(RaceReport {
                        addr: cell,
                        second: t,
                        first: ThreadId::new(first as u32),
                        second_is_write: is_write,
                        first_origin: (first_origin != u32::MAX)
                            .then(|| drms_trace::RoutineId::new(first_origin)),
                        second_origin: self.current_routine(t),
                    });
                }
            }
            let epoch = self.epoch_of(t);
            if is_write {
                state.write = epoch;
                state.write_origin = origin;
                state.write_locks = lockset;
            } else {
                state.read = epoch;
                state.read_origin = origin;
                state.read_locks = lockset;
            }
            self.cells.set(cell, state);
        }
    }

    fn stack_mut(&mut self, t: ThreadId) -> &mut Vec<u32> {
        let idx = t.index() as usize;
        while self.stacks.len() <= idx {
            self.stacks.push(Vec::new());
            self.locksets.push(0);
        }
        &mut self.stacks[idx]
    }

    fn toggle_lock(&mut self, t: ThreadId, mutex: u32) {
        self.stack_mut(t);
        // Order-independent set hash: acquire and release both xor.
        let h = (mutex as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.locksets[t.index() as usize] ^= h;
    }

    fn release(&mut self, t: ThreadId, key: u32, table: Table) {
        let vc = self.vc_mut(t).clone();
        let entry = match table {
            Table::Sem => self.sem_vc.entry(key).or_default(),
            Table::Mutex => self.mutex_vc.entry(key).or_default(),
            Table::Cond => self.cond_vc.entry(key).or_default(),
        };
        join(entry, &vc);
        self.tick(t);
    }

    fn acquire(&mut self, t: ThreadId, key: u32, table: Table) {
        let source = match table {
            Table::Sem => self.sem_vc.get(&key).cloned(),
            Table::Mutex => self.mutex_vc.get(&key).cloned(),
            Table::Cond => self.cond_vc.get(&key).cloned(),
        };
        if let Some(vc) = source {
            join(self.vc_mut(t), &vc);
        }
    }
}

#[derive(Copy, Clone)]
enum Table {
    Sem,
    Mutex,
    Cond,
}

impl EventSink for HelgrindTool {
    fn on_thread_start(&mut self, thread: ThreadId, parent: Option<ThreadId>) {
        self.vc_mut(thread);
        if let Some(p) = parent {
            let pvc = self.vc_mut(p).clone();
            join(self.vc_mut(thread), &pvc);
            self.tick(p);
        }
        self.tick(thread);
    }

    fn on_read(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.access(thread, addr, len, false);
    }

    fn on_write(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.access(thread, addr, len, true);
    }

    fn on_kernel_to_user(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        // Kernel fills act as writes by the requesting thread.
        self.access(thread, addr, len, true);
    }

    fn on_user_to_kernel(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.access(thread, addr, len, false);
    }

    fn on_call(&mut self, thread: ThreadId, routine: drms_trace::RoutineId, _cost: u64) {
        self.stack_mut(thread).push(routine.index());
    }

    fn on_return(&mut self, thread: ThreadId, _routine: drms_trace::RoutineId, _cost: u64) {
        self.stack_mut(thread).pop();
    }

    fn on_sync(&mut self, thread: ThreadId, op: SyncOp) {
        match op {
            SyncOp::SemSignal(s) => self.release(thread, s, Table::Sem),
            SyncOp::SemWait(s) => self.acquire(thread, s, Table::Sem),
            SyncOp::MutexLock(m) => {
                self.toggle_lock(thread, m);
                self.acquire(thread, m, Table::Mutex);
            }
            SyncOp::MutexUnlock(m) => {
                self.toggle_lock(thread, m);
                self.release(thread, m, Table::Mutex);
            }
            SyncOp::CondWait { cond, mutex } => {
                // Atomic release of the mutex and publication to the cond.
                self.release(thread, mutex, Table::Mutex);
                self.release(thread, cond, Table::Cond);
            }
            SyncOp::CondSignal(c) | SyncOp::CondBroadcast(c) => {
                self.release(thread, c, Table::Cond);
            }
            SyncOp::Spawn { .. } => {
                // Ordering handled in on_thread_start via the parent link.
            }
            SyncOp::Join { child } => {
                let cvc = self.vc_mut(child).clone();
                join(self.vc_mut(thread), &cvc);
            }
        }
    }
}

impl Tool for HelgrindTool {
    fn name(&self) -> &str {
        "helgrind"
    }

    fn shadow_bytes(&self) -> u64 {
        let vc_bytes: usize = self.clocks.iter().map(|v| v.len() * 4 + 24).sum::<usize>()
            + (self.sem_vc.len() + self.mutex_vc.len() + self.cond_vc.len()) * 64;
        let stack_bytes: usize = self.stacks.iter().map(|s| s.capacity() * 4 + 24).sum();
        self.cells.bytes()
            + vc_bytes as u64
            + stack_bytes as u64
            + (self.races.len() * std::mem::size_of::<RaceReport>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId::new(0);
    const T1: ThreadId = ThreadId::new(1);

    fn started(tool: &mut HelgrindTool) {
        tool.on_thread_start(T0, None);
        tool.on_thread_start(T1, Some(T0));
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let mut hg = HelgrindTool::new();
        started(&mut hg);
        hg.on_write(T0, Addr::new(10), 1);
        hg.on_write(T1, Addr::new(10), 1);
        assert_eq!(hg.race_count(), 1);
        let r = hg.races()[0];
        assert_eq!(r.second, T1);
        assert!(r.second_is_write);
    }

    #[test]
    fn spawn_orders_parent_before_child() {
        let mut hg = HelgrindTool::new();
        hg.on_thread_start(T0, None);
        hg.on_write(T0, Addr::new(10), 1);
        hg.on_thread_start(T1, Some(T0)); // child sees parent's write
        hg.on_read(T1, Addr::new(10), 1);
        assert_eq!(hg.race_count(), 0);
    }

    #[test]
    fn mutex_protects_accesses() {
        let mut hg = HelgrindTool::new();
        started(&mut hg);
        hg.on_sync(T0, SyncOp::MutexLock(0));
        hg.on_write(T0, Addr::new(5), 1);
        hg.on_sync(T0, SyncOp::MutexUnlock(0));
        hg.on_sync(T1, SyncOp::MutexLock(0));
        hg.on_write(T1, Addr::new(5), 1);
        hg.on_sync(T1, SyncOp::MutexUnlock(0));
        assert_eq!(hg.race_count(), 0);
    }

    #[test]
    fn semaphore_handoff_orders_producer_consumer() {
        let mut hg = HelgrindTool::new();
        started(&mut hg);
        hg.on_write(T0, Addr::new(7), 1);
        hg.on_sync(T0, SyncOp::SemSignal(0));
        hg.on_sync(T1, SyncOp::SemWait(0));
        hg.on_read(T1, Addr::new(7), 1);
        assert_eq!(hg.race_count(), 0);
    }

    #[test]
    fn read_read_never_races() {
        let mut hg = HelgrindTool::new();
        started(&mut hg);
        hg.on_read(T0, Addr::new(3), 1);
        hg.on_read(T1, Addr::new(3), 1);
        assert_eq!(hg.race_count(), 0);
    }

    #[test]
    fn racing_cell_reported_once() {
        let mut hg = HelgrindTool::new();
        started(&mut hg);
        hg.on_write(T0, Addr::new(10), 1);
        hg.on_write(T1, Addr::new(10), 1);
        hg.on_write(T0, Addr::new(10), 1);
        hg.on_write(T1, Addr::new(10), 1);
        assert_eq!(hg.race_count(), 1);
        assert!(hg.shadow_bytes() > 0);
        assert_eq!(hg.name(), "helgrind");
    }

    #[test]
    fn join_orders_child_before_parent() {
        let mut hg = HelgrindTool::new();
        started(&mut hg);
        hg.on_write(T1, Addr::new(20), 1);
        hg.on_sync(T0, SyncOp::Join { child: T1 });
        hg.on_read(T0, Addr::new(20), 1);
        assert_eq!(hg.race_count(), 0);
    }

    #[test]
    fn unordered_read_then_write_races() {
        let mut hg = HelgrindTool::new();
        started(&mut hg);
        hg.on_read(T0, Addr::new(11), 1);
        hg.on_write(T1, Addr::new(11), 1);
        assert_eq!(hg.race_count(), 1);
        assert!(!hg.races()[0].second_is_write || hg.races()[0].second == T1);
    }
}
