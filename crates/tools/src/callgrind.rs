//! `callgrind`-like call-graph profiler.
//!
//! Builds the dynamic call graph with per-arc call counts and inclusive
//! costs, plus per-routine inclusive/exclusive basic-block totals. It
//! traces only calls and returns (no per-access shadowing), matching the
//! cost profile of a call-graph generator in the paper's tool comparison.

use drms_trace::{EventSink, RoutineId, ThreadId};
use drms_vm::Tool;
use std::collections::HashMap;

/// Statistics of one call-graph arc (caller → callee).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ArcStats {
    /// Number of calls along this arc.
    pub calls: u64,
    /// Total inclusive cost of those calls.
    pub inclusive_cost: u64,
}

/// Per-routine aggregate costs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutineCost {
    /// Activations observed.
    pub calls: u64,
    /// Cost including descendants.
    pub inclusive: u64,
    /// Cost excluding descendants.
    pub exclusive: u64,
}

#[derive(Clone, Debug)]
struct Frame {
    routine: RoutineId,
    entry_cost: u64,
    callee_cost: u64,
    caller: Option<RoutineId>,
}

/// A call-graph generating profiler in the spirit of `callgrind`.
///
/// # Example
/// ```
/// use drms_tools::CallgrindTool;
/// use drms_vm::{ProgramBuilder, run_program, RunConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let leaf = pb.function("leaf", 0, |f| { let _ = f.add(1, 1); });
/// let main = pb.function("main", 0, |f| {
///     f.call_void(leaf, &[]);
///     f.call_void(leaf, &[]);
/// });
/// let program = pb.finish(main).unwrap();
/// let mut cg = CallgrindTool::new();
/// run_program(&program, RunConfig::default(), &mut cg).unwrap();
/// assert_eq!(cg.arc(main, leaf).unwrap().calls, 2);
/// ```
#[derive(Default)]
pub struct CallgrindTool {
    stacks: Vec<Vec<Frame>>,
    arcs: HashMap<(RoutineId, RoutineId), ArcStats>,
    routines: HashMap<RoutineId, RoutineCost>,
}

impl CallgrindTool {
    /// Creates an empty call-graph profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The arc (caller → callee), if observed.
    pub fn arc(&self, caller: RoutineId, callee: RoutineId) -> Option<&ArcStats> {
        self.arcs.get(&(caller, callee))
    }

    /// All observed arcs.
    pub fn arcs(&self) -> impl Iterator<Item = (&(RoutineId, RoutineId), &ArcStats)> {
        self.arcs.iter()
    }

    /// Aggregate costs of `routine`, if observed.
    pub fn routine_cost(&self, routine: RoutineId) -> Option<&RoutineCost> {
        self.routines.get(&routine)
    }

    /// Number of distinct routines observed.
    pub fn routine_count(&self) -> usize {
        self.routines.len()
    }

    fn stack_mut(&mut self, t: ThreadId) -> &mut Vec<Frame> {
        let idx = t.index() as usize;
        while self.stacks.len() <= idx {
            self.stacks.push(Vec::new());
        }
        &mut self.stacks[idx]
    }
}

impl EventSink for CallgrindTool {
    fn on_call(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        let stack = self.stack_mut(thread);
        let caller = stack.last().map(|f| f.routine);
        stack.push(Frame {
            routine,
            entry_cost: cost,
            callee_cost: 0,
            caller,
        });
    }

    fn on_return(&mut self, thread: ThreadId, _routine: RoutineId, cost: u64) {
        let stack = self.stack_mut(thread);
        let Some(frame) = stack.pop() else {
            return;
        };
        let inclusive = cost.saturating_sub(frame.entry_cost);
        let exclusive = inclusive.saturating_sub(frame.callee_cost);
        if let Some(parent) = stack.last_mut() {
            parent.callee_cost += inclusive;
        }
        let rc = self.routines.entry(frame.routine).or_default();
        rc.calls += 1;
        rc.inclusive += inclusive;
        rc.exclusive += exclusive;
        if let Some(caller) = frame.caller {
            let arc = self.arcs.entry((caller, frame.routine)).or_default();
            arc.calls += 1;
            arc.inclusive_cost += inclusive;
        }
    }

    fn on_thread_exit(&mut self, thread: ThreadId, cost: u64) {
        while !self.stack_mut(thread).is_empty() {
            let routine = self
                .stack_mut(thread)
                .last()
                .map(|f| f.routine)
                .expect("frame");
            self.on_return(thread, routine, cost);
        }
    }
}

impl Tool for CallgrindTool {
    fn name(&self) -> &str {
        "callgrind"
    }

    fn shadow_bytes(&self) -> u64 {
        (self.arcs.len()
            * (std::mem::size_of::<(RoutineId, RoutineId)>()
                + std::mem::size_of::<ArcStats>()
                + 32)
            + self.routines.len() * (std::mem::size_of::<RoutineCost>() + 40)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: ThreadId = ThreadId::MAIN;
    const MAIN: RoutineId = RoutineId::new(0);
    const F: RoutineId = RoutineId::new(1);
    const G: RoutineId = RoutineId::new(2);

    #[test]
    fn inclusive_and_exclusive_costs() {
        let mut cg = CallgrindTool::new();
        cg.on_call(T, MAIN, 0);
        cg.on_call(T, F, 10);
        cg.on_call(T, G, 15);
        cg.on_return(T, G, 25); // g: inclusive 10
        cg.on_return(T, F, 40); // f: inclusive 30, exclusive 20
        cg.on_return(T, MAIN, 50); // main: inclusive 50, exclusive 20
        let f = cg.routine_cost(F).unwrap();
        assert_eq!((f.inclusive, f.exclusive), (30, 20));
        let m = cg.routine_cost(MAIN).unwrap();
        assert_eq!((m.inclusive, m.exclusive), (50, 20));
        assert_eq!(cg.arc(MAIN, F).unwrap().inclusive_cost, 30);
        assert_eq!(cg.arc(F, G).unwrap().calls, 1);
        assert_eq!(cg.routine_count(), 3);
    }

    #[test]
    fn recursion_accumulates_arcs() {
        let mut cg = CallgrindTool::new();
        cg.on_call(T, MAIN, 0);
        cg.on_call(T, F, 1);
        cg.on_call(T, F, 2);
        cg.on_return(T, F, 3);
        cg.on_return(T, F, 4);
        cg.on_return(T, MAIN, 5);
        assert_eq!(cg.arc(F, F).unwrap().calls, 1);
        assert_eq!(cg.arc(MAIN, F).unwrap().calls, 1);
        assert_eq!(cg.routine_cost(F).unwrap().calls, 2);
    }

    #[test]
    fn thread_exit_unwinds() {
        let mut cg = CallgrindTool::new();
        cg.on_call(T, MAIN, 0);
        cg.on_call(T, F, 5);
        cg.on_thread_exit(T, 9);
        assert_eq!(cg.routine_cost(F).unwrap().inclusive, 4);
        assert_eq!(cg.routine_cost(MAIN).unwrap().inclusive, 9);
        assert!(cg.shadow_bytes() > 0);
        assert_eq!(cg.name(), "callgrind");
        assert_eq!(cg.arcs().count(), 1);
    }
}
