//! `memcheck`-like definedness checker.
//!
//! Tracks one shadow byte per guest cell recording whether the cell holds
//! a defined value (written by guest code or filled by the kernel).
//! Reads of undefined cells are reported as use-of-uninitialized-value
//! errors. This reproduces the *cost profile* of a memory checker — one
//! shadow operation per memory access, no call/return tracing — which is
//! what the paper's Table 1 compares against.

use drms_trace::{Addr, EventSink, ThreadId};
use drms_vm::{BatchKind, EventBatch, ShadowMemory, Tool};

const UNDEFINED: u8 = 0;
const DEFINED: u8 = 1;
const REPORTED: u8 = 2;

/// A lightweight memcheck analogue: definedness bits plus error counting.
///
/// # Example
/// ```
/// use drms_tools::MemcheckTool;
/// use drms_vm::{ProgramBuilder, run_program, RunConfig, Tool};
///
/// let mut pb = ProgramBuilder::new();
/// let main = pb.function("main", 0, |f| {
///     let buf = f.alloc(4);
///     let _ = f.load(buf, 0); // uninitialized read
///     f.store(buf, 0, 7);
///     let _ = f.load(buf, 0); // now defined
///     f.ret(None);
/// });
/// let program = pb.finish(main).unwrap();
/// let mut mc = MemcheckTool::new();
/// run_program(&program, RunConfig::default(), &mut mc).unwrap();
/// assert_eq!(mc.error_count(), 1);
/// ```
#[derive(Default)]
pub struct MemcheckTool {
    defined: ShadowMemory<u8>,
    errors: u64,
    accesses: u64,
}

impl MemcheckTool {
    /// Creates a memcheck tool with all memory undefined.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a memcheck tool that treats the program's data segment —
    /// its global arrays — as defined, as real memcheck does for
    /// initialized data sections.
    pub fn for_program(program: &drms_vm::Program) -> Self {
        let mut tool = Self::new();
        for (base, data) in program.globals() {
            for cell in base.range(data.len().max(1) as u32) {
                tool.defined.set(cell, DEFINED);
            }
        }
        tool
    }

    /// Number of distinct uninitialized-read errors found.
    pub fn error_count(&self) -> u64 {
        self.errors
    }

    /// Total memory accesses checked.
    pub fn access_count(&self) -> u64 {
        self.accesses
    }
}

impl EventSink for MemcheckTool {
    fn on_read(&mut self, _thread: ThreadId, addr: Addr, len: u32) {
        for cell in addr.range(len) {
            self.accesses += 1;
            if self.defined.get(cell) == UNDEFINED {
                // Report each undefined location once, as memcheck
                // suppresses duplicate origins.
                self.errors += 1;
                self.defined.set(cell, REPORTED);
            }
        }
    }

    fn on_write(&mut self, _thread: ThreadId, addr: Addr, len: u32) {
        for cell in addr.range(len) {
            self.accesses += 1;
            self.defined.set(cell, DEFINED);
        }
    }

    fn on_kernel_to_user(&mut self, _thread: ThreadId, addr: Addr, len: u32) {
        for cell in addr.range(len) {
            self.defined.set(cell, DEFINED);
        }
    }

    fn on_user_to_kernel(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        // Writing an undefined buffer to the kernel is an error too.
        self.on_read(thread, addr, len);
    }
}

impl Tool for MemcheckTool {
    fn name(&self) -> &str {
        "memcheck"
    }

    fn shadow_bytes(&self) -> u64 {
        self.defined.bytes()
    }

    /// Native batch path: identical per-cell semantics to
    /// `on_read`/`on_write`, minus the per-event callback hop, with the
    /// write path using one shadow walk per cell instead of a
    /// `get`+`set` pair.
    fn observe_batch(&mut self, batch: &EventBatch) {
        let (kinds, addrs, lens) = batch.arrays();
        for i in 0..kinds.len() {
            match kinds[i] {
                BatchKind::Read => {
                    for cell in addrs[i].range(lens[i]) {
                        self.accesses += 1;
                        let slot = self.defined.slot_mut(cell);
                        if *slot == UNDEFINED {
                            // Report each undefined location once, as
                            // memcheck suppresses duplicate origins.
                            self.errors += 1;
                            *slot = REPORTED;
                        }
                    }
                }
                BatchKind::Write => {
                    for cell in addrs[i].range(lens[i]) {
                        self.accesses += 1;
                        *self.defined.slot_mut(cell) = DEFINED;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: ThreadId = ThreadId::MAIN;

    #[test]
    fn undefined_reads_reported_once_per_cell() {
        let mut mc = MemcheckTool::new();
        mc.on_read(T, Addr::new(100), 2);
        mc.on_read(T, Addr::new(100), 2);
        assert_eq!(mc.error_count(), 2, "two cells, each reported once");
        assert_eq!(mc.access_count(), 4);
    }

    #[test]
    fn writes_and_kernel_fills_define() {
        let mut mc = MemcheckTool::new();
        mc.on_write(T, Addr::new(5), 1);
        mc.on_kernel_to_user(T, Addr::new(6), 1);
        mc.on_read(T, Addr::new(5), 2);
        assert_eq!(mc.error_count(), 0);
    }

    #[test]
    fn native_batch_path_matches_per_event_replay() {
        let mut batch = EventBatch::with_capacity(16);
        batch.push(BatchKind::Read, Addr::new(100), 2); // undefined
        batch.push(BatchKind::Write, Addr::new(100), 1);
        batch.push(BatchKind::Read, Addr::new(100), 2); // one still undefined... reported already
        batch.push(BatchKind::Write, Addr::new(200), 4);
        batch.push(BatchKind::Read, Addr::new(200), 4);

        let mut native = MemcheckTool::new();
        native.observe_batch(&batch);

        let mut replayed = MemcheckTool::new();
        for (kind, addr, len) in batch.entries() {
            match kind {
                BatchKind::Read => replayed.on_read(T, addr, len),
                BatchKind::Write => replayed.on_write(T, addr, len),
            }
        }
        assert_eq!(native.error_count(), replayed.error_count());
        assert_eq!(native.access_count(), replayed.access_count());
        assert_eq!(native.shadow_bytes(), replayed.shadow_bytes());
        assert_eq!(native.error_count(), 2, "cells 100 and 101, once each");
    }

    #[test]
    fn user_to_kernel_checks_definedness() {
        let mut mc = MemcheckTool::new();
        mc.on_write(T, Addr::new(10), 1);
        mc.on_user_to_kernel(T, Addr::new(10), 2); // second cell undefined
        assert_eq!(mc.error_count(), 1);
        assert!(mc.shadow_bytes() > 0);
        assert_eq!(mc.name(), "memcheck");
    }
}
