//! Property-based fuzzing of the builder + interpreter: randomly
//! generated structured guest programs must pass validation, run to
//! completion within the instruction budget, and behave identically when
//! re-run (the VM is deterministic under round-robin scheduling).

use drms_vm::{run_program, FnBuilder, NullTool, Operand, ProgramBuilder, RunConfig, TraceRecorder};
use proptest::prelude::*;

/// One structured statement in a generated routine body.
#[derive(Clone, Debug)]
enum Stmt {
    Arith(u8, u8),
    LoadStore(u8),
    IfThen(u8, Vec<Stmt>),
    IfElse(u8, Vec<Stmt>, Vec<Stmt>),
    ForLoop(u8, Vec<Stmt>),
    Rand(u8),
    CallHelper(u8),
}

fn stmt_strategy(depth: u32) -> BoxedStrategy<Stmt> {
    let leaf = prop_oneof![
        ((0u8..8), (0u8..8)).prop_map(|(a, b)| Stmt::Arith(a, b)),
        (0u8..16).prop_map(Stmt::LoadStore),
        (0u8..8).prop_map(Stmt::Rand),
        (0u8..4).prop_map(Stmt::CallHelper),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = stmt_strategy(depth - 1);
        prop_oneof![
            4 => leaf,
            1 => ((0u8..8), proptest::collection::vec(inner.clone(), 0..4))
                .prop_map(|(c, body)| Stmt::IfThen(c, body)),
            1 => (
                (0u8..8),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, a, b)| Stmt::IfElse(c, a, b)),
            1 => ((1u8..6), proptest::collection::vec(inner, 0..3))
                .prop_map(|(n, body)| Stmt::ForLoop(n, body)),
        ]
        .boxed()
    }
}

/// Emits a statement list into a routine body. `scratch` is a base
/// register holding the address of a scratch buffer; `vals` is a small
/// pool of value registers the statements mix.
fn emit(f: &mut FnBuilder, stmts: &[Stmt], scratch: drms_vm::Reg, vals: &[drms_vm::Reg], helpers: &[drms_trace::RoutineId]) {
    for stmt in stmts {
        match stmt {
            Stmt::Arith(a, b) => {
                let ra = vals[*a as usize % vals.len()];
                let rb = vals[*b as usize % vals.len()];
                let sum = f.add(ra, rb);
                let clipped = f.rem(sum, 10007);
                f.assign(ra, clipped);
            }
            Stmt::LoadStore(slot) => {
                let off = (*slot % 16) as i64;
                let v = f.load(scratch, off);
                let v2 = f.add(v, 1);
                f.store(scratch, off, v2);
            }
            Stmt::IfThen(c, body) => {
                let rc = vals[*c as usize % vals.len()];
                let cond = f.gt(rc, 3);
                f.if_then(cond, |f| emit(f, body, scratch, vals, helpers));
            }
            Stmt::IfElse(c, a, b) => {
                let rc = vals[*c as usize % vals.len()];
                let cond = f.lt(rc, 100);
                f.if_else(
                    cond,
                    |f| emit(f, a, scratch, vals, helpers),
                    |f| emit(f, b, scratch, vals, helpers),
                );
            }
            Stmt::ForLoop(n, body) => {
                f.for_range(0, *n as i64, |f, _| emit(f, body, scratch, vals, helpers));
            }
            Stmt::Rand(v) => {
                let rv = vals[*v as usize % vals.len()];
                let r = f.rand(97);
                f.assign(rv, r);
            }
            Stmt::CallHelper(h) => {
                let helper = helpers[*h as usize % helpers.len()];
                f.call_void(helper, &[Operand::Reg(scratch)]);
            }
        }
    }
}

fn build_program(bodies: &[Vec<Stmt>]) -> drms_vm::Program {
    let mut pb = ProgramBuilder::new();
    // A few helpers that touch the scratch buffer in different ways.
    let helpers: Vec<drms_trace::RoutineId> = (0..4)
        .map(|i| {
            pb.function(&format!("helper_{i}"), 1, |f| {
                let base = f.param(0);
                let v = f.load(base, i);
                let w = f.add(v, i as i64 + 1);
                f.store(base, i, w);
                f.ret(None);
            })
        })
        .collect();
    let routines: Vec<drms_trace::RoutineId> = bodies
        .iter()
        .enumerate()
        .map(|(i, body)| {
            let body = body.clone();
            let helpers = helpers.clone();
            pb.function(&format!("gen_{i}"), 1, move |f| {
                let scratch = f.param(0);
                let vals: Vec<drms_vm::Reg> = (0..4)
                    .map(|k| f.copy(k as i64 + 1))
                    .collect();
                emit(f, &body, scratch, &vals, &helpers);
                f.ret(None);
            })
        })
        .collect();
    let main = pb.function("main", 0, |f| {
        let scratch = f.alloc(16);
        for &r in &routines {
            f.call_void(r, &[Operand::Reg(scratch)]);
        }
        f.ret(None);
    });
    pb.finish(main).expect("generated programs always validate")
}

fn config() -> RunConfig {
    RunConfig {
        max_instructions: 2_000_000,
        ..RunConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_programs_run_to_completion(
        bodies in proptest::collection::vec(
            proptest::collection::vec(stmt_strategy(2), 0..10),
            1..4,
        )
    ) {
        let program = build_program(&bodies);
        prop_assert!(program.validate().is_ok());
        let stats = run_program(&program, config(), &mut NullTool)
            .expect("generated programs terminate");
        prop_assert!(stats.basic_blocks >= 1);
        prop_assert_eq!(stats.threads, 1);
    }

    #[test]
    fn generated_programs_are_deterministic(
        bodies in proptest::collection::vec(
            proptest::collection::vec(stmt_strategy(2), 0..8),
            1..3,
        )
    ) {
        let program = build_program(&bodies);
        let run = || {
            let mut rec = TraceRecorder::new();
            run_program(&program, config(), &mut rec).expect("run");
            drms_trace::merge_traces(rec.into_traces())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn generated_listings_disassemble(
        bodies in proptest::collection::vec(
            proptest::collection::vec(stmt_strategy(1), 0..6),
            1..3,
        )
    ) {
        let program = build_program(&bodies);
        let text = drms_vm::disassemble(&program);
        prop_assert!(text.contains("routine @"));
        // Every routine name appears in the listing.
        for r in program.routines() {
            prop_assert!(text.contains(&r.name));
        }
    }
}
