//! Property-based fuzzing of the builder + interpreter: randomly
//! generated structured guest programs must pass validation, run to
//! completion within the instruction budget, and behave identically when
//! re-run (the VM is deterministic under round-robin scheduling).
//!
//! Programs are generated with the workspace's own seeded PRNG (the
//! build environment has no network access, so no external fuzzing
//! crate); every case is reproducible from its printed seed.

use drms_vm::{
    run_program, FnBuilder, NullTool, Operand, ProgramBuilder, RunConfig, SmallRng, TraceRecorder,
};

const CASES: u64 = 48;

/// One structured statement in a generated routine body.
#[derive(Clone, Debug)]
enum Stmt {
    Arith(u8, u8),
    LoadStore(u8),
    IfThen(u8, Vec<Stmt>),
    IfElse(u8, Vec<Stmt>, Vec<Stmt>),
    ForLoop(u8, Vec<Stmt>),
    Rand(u8),
    CallHelper(u8),
}

fn random_leaf(rng: &mut SmallRng) -> Stmt {
    match rng.gen_range(0u32..4) {
        0 => Stmt::Arith(rng.gen_range(0u32..8) as u8, rng.gen_range(0u32..8) as u8),
        1 => Stmt::LoadStore(rng.gen_range(0u32..16) as u8),
        2 => Stmt::Rand(rng.gen_range(0u32..8) as u8),
        _ => Stmt::CallHelper(rng.gen_range(0u32..4) as u8),
    }
}

/// Samples one statement: at depth 0 only leaves; otherwise leaves with
/// weight 4 against if/if-else/for with weight 1 each.
fn random_stmt(rng: &mut SmallRng, depth: u32) -> Stmt {
    if depth == 0 {
        return random_leaf(rng);
    }
    match rng.gen_range(0u32..7) {
        0..=3 => random_leaf(rng),
        4 => {
            let c = rng.gen_range(0u32..8) as u8;
            let body = random_stmts(rng, depth - 1, 4);
            Stmt::IfThen(c, body)
        }
        5 => {
            let c = rng.gen_range(0u32..8) as u8;
            let a = random_stmts(rng, depth - 1, 3);
            let b = random_stmts(rng, depth - 1, 3);
            Stmt::IfElse(c, a, b)
        }
        _ => {
            let n = rng.gen_range(1u32..6) as u8;
            let body = random_stmts(rng, depth - 1, 3);
            Stmt::ForLoop(n, body)
        }
    }
}

fn random_stmts(rng: &mut SmallRng, depth: u32, max_len: usize) -> Vec<Stmt> {
    let len = rng.gen_range(0usize..max_len);
    (0..len).map(|_| random_stmt(rng, depth)).collect()
}

/// Samples 1..max_routines routine bodies of 0..max_stmts statements.
fn random_bodies(
    rng: &mut SmallRng,
    depth: u32,
    max_routines: usize,
    max_stmts: usize,
) -> Vec<Vec<Stmt>> {
    let routines = rng.gen_range(1usize..max_routines);
    (0..routines)
        .map(|_| random_stmts(rng, depth, max_stmts))
        .collect()
}

/// Emits a statement list into a routine body. `scratch` is a base
/// register holding the address of a scratch buffer; `vals` is a small
/// pool of value registers the statements mix.
fn emit(
    f: &mut FnBuilder,
    stmts: &[Stmt],
    scratch: drms_vm::Reg,
    vals: &[drms_vm::Reg],
    helpers: &[drms_trace::RoutineId],
) {
    for stmt in stmts {
        match stmt {
            Stmt::Arith(a, b) => {
                let ra = vals[*a as usize % vals.len()];
                let rb = vals[*b as usize % vals.len()];
                let sum = f.add(ra, rb);
                let clipped = f.rem(sum, 10007);
                f.assign(ra, clipped);
            }
            Stmt::LoadStore(slot) => {
                let off = (*slot % 16) as i64;
                let v = f.load(scratch, off);
                let v2 = f.add(v, 1);
                f.store(scratch, off, v2);
            }
            Stmt::IfThen(c, body) => {
                let rc = vals[*c as usize % vals.len()];
                let cond = f.gt(rc, 3);
                f.if_then(cond, |f| emit(f, body, scratch, vals, helpers));
            }
            Stmt::IfElse(c, a, b) => {
                let rc = vals[*c as usize % vals.len()];
                let cond = f.lt(rc, 100);
                f.if_else(
                    cond,
                    |f| emit(f, a, scratch, vals, helpers),
                    |f| emit(f, b, scratch, vals, helpers),
                );
            }
            Stmt::ForLoop(n, body) => {
                f.for_range(0, *n as i64, |f, _| emit(f, body, scratch, vals, helpers));
            }
            Stmt::Rand(v) => {
                let rv = vals[*v as usize % vals.len()];
                let r = f.rand(97);
                f.assign(rv, r);
            }
            Stmt::CallHelper(h) => {
                let helper = helpers[*h as usize % helpers.len()];
                f.call_void(helper, &[Operand::Reg(scratch)]);
            }
        }
    }
}

fn build_program(bodies: &[Vec<Stmt>]) -> drms_vm::Program {
    let mut pb = ProgramBuilder::new();
    // A few helpers that touch the scratch buffer in different ways.
    let helpers: Vec<drms_trace::RoutineId> = (0..4)
        .map(|i| {
            pb.function(&format!("helper_{i}"), 1, |f| {
                let base = f.param(0);
                let v = f.load(base, i);
                let w = f.add(v, i as i64 + 1);
                f.store(base, i, w);
                f.ret(None);
            })
        })
        .collect();
    let routines: Vec<drms_trace::RoutineId> = bodies
        .iter()
        .enumerate()
        .map(|(i, body)| {
            let body = body.clone();
            let helpers = helpers.clone();
            pb.function(&format!("gen_{i}"), 1, move |f| {
                let scratch = f.param(0);
                let vals: Vec<drms_vm::Reg> = (0..4).map(|k| f.copy(k as i64 + 1)).collect();
                emit(f, &body, scratch, &vals, &helpers);
                f.ret(None);
            })
        })
        .collect();
    let main = pb.function("main", 0, |f| {
        let scratch = f.alloc(16);
        for &r in &routines {
            f.call_void(r, &[Operand::Reg(scratch)]);
        }
        f.ret(None);
    });
    pb.finish(main).expect("generated programs always validate")
}

fn config() -> RunConfig {
    RunConfig {
        max_instructions: 2_000_000,
        ..RunConfig::default()
    }
}

#[test]
fn generated_programs_run_to_completion() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF022 ^ case);
        let bodies = random_bodies(&mut rng, 2, 4, 10);
        let program = build_program(&bodies);
        assert!(program.validate().is_ok(), "case {case}");
        let stats = run_program(&program, config(), &mut NullTool)
            .unwrap_or_else(|e| panic!("generated programs terminate (case {case}): {e}"));
        assert!(stats.basic_blocks >= 1, "case {case}");
        assert_eq!(stats.threads, 1, "case {case}");
    }
}

#[test]
fn generated_programs_are_deterministic() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xDE7 ^ case);
        let bodies = random_bodies(&mut rng, 2, 3, 8);
        let program = build_program(&bodies);
        let run = || {
            let mut rec = TraceRecorder::new();
            run_program(&program, config(), &mut rec).expect("run");
            drms_trace::merge_traces(rec.into_traces())
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

#[test]
fn generated_listings_disassemble() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD15A ^ case);
        let bodies = random_bodies(&mut rng, 1, 3, 6);
        let program = build_program(&bodies);
        let text = drms_vm::disassemble(&program);
        assert!(text.contains("routine @"), "case {case}");
        // Every routine name appears in the listing.
        for r in program.routines() {
            assert!(text.contains(&r.name), "case {case}: missing {}", r.name);
        }
    }
}
