//! The kernel model: devices, file descriptors and the system-call table.
//!
//! Guest threads obtain data from external devices (disk, network) and
//! send data to them exclusively through system calls. Following §4.1 of
//! the paper, input system calls (`read`, `recvfrom`, `pread64`, `readv`,
//! `msgrcv`, `preadv`) map to `kernelToUser` events — the kernel writes
//! device data into a user buffer — while output system calls (`write`,
//! `sendto`, `pwrite64`, `writev`, `msgsnd`, `pwritev`) map to
//! `userToKernel` events — the kernel reads the user buffer.

use crate::fault::{FaultCounters, FaultKind, FaultPlan, FaultState};
use crate::ir::Operand;
use std::fmt;

/// Direction of a system call's data transfer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Device → user memory (`kernelToUser`).
    Input,
    /// User memory → device (`userToKernel`).
    Output,
}

/// The system calls understood by the kernel model, named after their
/// Linux x86-64 counterparts used by the paper's syscall wrappers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SyscallNo {
    Read,
    Pread64,
    Readv,
    Recvfrom,
    Msgrcv,
    Preadv,
    Write,
    Pwrite64,
    Writev,
    Sendto,
    Msgsnd,
    Pwritev,
}

impl SyscallNo {
    /// Whether the call transfers data into or out of user memory.
    pub fn direction(self) -> Direction {
        match self {
            SyscallNo::Read
            | SyscallNo::Pread64
            | SyscallNo::Readv
            | SyscallNo::Recvfrom
            | SyscallNo::Msgrcv
            | SyscallNo::Preadv => Direction::Input,
            SyscallNo::Write
            | SyscallNo::Pwrite64
            | SyscallNo::Writev
            | SyscallNo::Sendto
            | SyscallNo::Msgsnd
            | SyscallNo::Pwritev => Direction::Output,
        }
    }

    /// Whether the call takes an explicit file offset (positioned I/O).
    pub fn is_positioned(self) -> bool {
        matches!(
            self,
            SyscallNo::Pread64 | SyscallNo::Preadv | SyscallNo::Pwrite64 | SyscallNo::Pwritev
        )
    }

    /// The Linux name of the call.
    pub fn name(self) -> &'static str {
        match self {
            SyscallNo::Read => "read",
            SyscallNo::Pread64 => "pread64",
            SyscallNo::Readv => "readv",
            SyscallNo::Recvfrom => "recvfrom",
            SyscallNo::Msgrcv => "msgrcv",
            SyscallNo::Preadv => "preadv",
            SyscallNo::Write => "write",
            SyscallNo::Pwrite64 => "pwrite64",
            SyscallNo::Writev => "writev",
            SyscallNo::Sendto => "sendto",
            SyscallNo::Msgsnd => "msgsnd",
            SyscallNo::Pwritev => "pwritev",
        }
    }
}

impl fmt::Display for SyscallNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A system-call invocation site in guest code: `no(fd, buf, len[, offset])`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Syscall {
    /// Which call.
    pub no: SyscallNo,
    /// File descriptor operand.
    pub fd: Operand,
    /// Base address of the user buffer, in cells.
    pub buf: Operand,
    /// Transfer length, in cells.
    pub len: Operand,
    /// File offset for positioned calls; ignored otherwise.
    pub offset: Operand,
}

/// An external device backing a file descriptor.
#[derive(Clone, Debug, PartialEq)]
pub enum Device {
    /// An unbounded input stream (network-like). Produces a deterministic
    /// pseudo-random sequence derived from `seed`.
    Stream { seed: u64 },
    /// A finite file with explicit contents; sequential and positioned
    /// reads are supported, writes append.
    File { data: Vec<i64> },
    /// An output-only sink that discards and counts written cells.
    Sink,
}

/// Errors raised by kernel operations.
///
/// Each maps to a POSIX errno (see [`KernelError::errno`]); the VM
/// delivers them to guest registers as negative errno values, exactly
/// like real syscalls, rather than aborting the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// The file descriptor was never opened (EBADF).
    BadFd { fd: i64 },
    /// An input call was issued on an output-only device or vice versa
    /// (EBADF: "not open for reading/writing").
    BadDirection { fd: i64 },
    /// The file descriptor was open once but has been closed (EBADF).
    Closed { fd: i64 },
    /// The call was interrupted; retrying may succeed (EINTR).
    Interrupted { fd: i64 },
    /// The device is temporarily unready; retrying may succeed
    /// (EAGAIN).
    WouldBlock { fd: i64 },
    /// The device has failed permanently (EIO).
    DeviceFailure { fd: i64 },
}

impl KernelError {
    /// The POSIX errno corresponding to this error.
    pub fn errno(&self) -> i64 {
        match self {
            KernelError::BadFd { .. }
            | KernelError::BadDirection { .. }
            | KernelError::Closed { .. } => 9, // EBADF
            KernelError::Interrupted { .. } => 4,   // EINTR
            KernelError::WouldBlock { .. } => 11,   // EAGAIN
            KernelError::DeviceFailure { .. } => 5, // EIO
        }
    }

    /// Whether a guest retry loop can reasonably expect the next
    /// attempt to succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            KernelError::Interrupted { .. } | KernelError::WouldBlock { .. }
        )
    }
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::BadFd { fd } => write!(f, "bad file descriptor {fd}"),
            KernelError::BadDirection { fd } => {
                write!(f, "unsupported transfer direction on fd {fd}")
            }
            KernelError::Closed { fd } => write!(f, "file descriptor {fd} is closed"),
            KernelError::Interrupted { fd } => write!(f, "interrupted transfer on fd {fd}"),
            KernelError::WouldBlock { fd } => write!(f, "fd {fd} would block"),
            KernelError::DeviceFailure { fd } => write!(f, "I/O error on fd {fd}"),
        }
    }
}

impl std::error::Error for KernelError {}

#[derive(Clone, Debug)]
struct OpenFile {
    device: Device,
    pos: u64,
    written: u64,
    read: u64,
    /// Closed descriptors keep their slot (fds stay dense) but reject
    /// all transfers.
    closed: bool,
    /// Set once an EIO fault fires; every later transfer fails too.
    failed: bool,
    /// 1-based count of transfer attempts, driving fault triggers.
    ops: u64,
}

/// Per-run kernel state: the open-file table.
///
/// File descriptors are dense indices assigned in [`Kernel::open`] order,
/// so guest programs can refer to them as immediates.
/// Tallies of completed kernel transfers, for the observability
/// registry (`kernel.transfers`, `kernel.cells_in`, `kernel.cells_out`).
/// Only *successful* transfers count: a faulted or rejected attempt
/// moves no cells and shows up in [`FaultCounters`] instead.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TransferCounters {
    /// Completed transfers in either direction.
    pub transfers: u64,
    /// Cells moved kernel→user (reads).
    pub cells_in: u64,
    /// Cells moved user→kernel (writes).
    pub cells_out: u64,
}

#[derive(Clone, Debug, Default)]
pub struct Kernel {
    files: Vec<OpenFile>,
    faults: Option<FaultState>,
    counters: FaultCounters,
    transfer_counters: TransferCounters,
}

impl Kernel {
    /// Creates a kernel with no open files.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a kernel with the given devices pre-opened as fds `0..n`.
    pub fn with_devices(devices: Vec<Device>) -> Self {
        let mut k = Kernel::new();
        for d in devices {
            k.open(d);
        }
        k
    }

    /// Opens a device, returning its file descriptor.
    pub fn open(&mut self, device: Device) -> i64 {
        self.files.push(OpenFile {
            device,
            pos: 0,
            written: 0,
            read: 0,
            closed: false,
            failed: false,
            ops: 0,
        });
        (self.files.len() - 1) as i64
    }

    /// Closes a descriptor; later transfers on it fail with
    /// [`KernelError::Closed`]. Descriptors stay dense, so other fds
    /// are unaffected.
    ///
    /// # Errors
    /// [`KernelError::BadFd`] if never opened, [`KernelError::Closed`]
    /// if already closed.
    pub fn close(&mut self, fd: i64) -> Result<(), KernelError> {
        let file = self
            .files
            .get_mut(fd as usize)
            .filter(|_| fd >= 0)
            .ok_or(KernelError::BadFd { fd })?;
        if file.closed {
            return Err(KernelError::Closed { fd });
        }
        file.closed = true;
        Ok(())
    }

    /// Installs a fault-injection plan, resetting its evaluation state.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultState::new(plan));
    }

    /// Counters of injected faults and errno deliveries so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.counters
    }

    /// Counters of completed transfers so far.
    pub fn transfer_counters(&self) -> TransferCounters {
        self.transfer_counters
    }

    /// Records one negative-errno delivery to a guest register.
    pub fn count_errno_return(&mut self) {
        self.counters.errno_returns += 1;
    }

    /// Number of open files.
    pub fn fd_count(&self) -> usize {
        self.files.len()
    }

    /// Total cells written to `fd` so far.
    pub fn written(&self, fd: i64) -> Option<u64> {
        self.files.get(fd as usize).map(|f| f.written)
    }

    /// Total cells read from `fd` so far.
    pub fn read_total(&self, fd: i64) -> Option<u64> {
        self.files.get(fd as usize).map(|f| f.read)
    }

    /// Validates a pending transfer and applies the fault plan,
    /// returning the *effective* length the transfer may move. This is
    /// the single fault gate: the VM calls it before [`Kernel::input`]
    /// or [`Kernel::output`], so `kernelToUser`/`userToKernel` events
    /// tag only cells that are actually delivered.
    ///
    /// Each call counts as one transfer attempt on `fd` for the fault
    /// plan's per-descriptor op numbering.
    ///
    /// # Errors
    /// Descriptor errors ([`KernelError::BadFd`], [`KernelError::Closed`],
    /// [`KernelError::BadDirection`]), a prior device failure
    /// ([`KernelError::DeviceFailure`]), or an injected fault
    /// ([`KernelError::Interrupted`], [`KernelError::WouldBlock`],
    /// [`KernelError::DeviceFailure`]).
    pub fn prepare_transfer(
        &mut self,
        fd: i64,
        dir: Direction,
        len: u32,
    ) -> Result<u32, KernelError> {
        let file = self
            .files
            .get_mut(fd as usize)
            .filter(|_| fd >= 0)
            .ok_or(KernelError::BadFd { fd })?;
        if file.closed {
            return Err(KernelError::Closed { fd });
        }
        if file.failed {
            self.counters.device_failures += 1;
            return Err(KernelError::DeviceFailure { fd });
        }
        if dir == Direction::Input && matches!(file.device, Device::Sink) {
            return Err(KernelError::BadDirection { fd });
        }
        file.ops += 1;
        let op = file.ops;
        match self.faults.as_mut().and_then(|s| s.decide(fd, dir, op)) {
            Some(FaultKind::Eio) => {
                self.files[fd as usize].failed = true;
                self.counters.device_failures += 1;
                Err(KernelError::DeviceFailure { fd })
            }
            Some(FaultKind::Eintr) => {
                self.counters.transient_errors += 1;
                Err(KernelError::Interrupted { fd })
            }
            Some(FaultKind::Eagain) => {
                self.counters.transient_errors += 1;
                Err(KernelError::WouldBlock { fd })
            }
            Some(FaultKind::ShortRead) if dir == Direction::Input && len > 1 => {
                self.counters.short_reads += 1;
                Ok(len.div_ceil(2))
            }
            Some(FaultKind::ShortWrite) if dir == Direction::Output && len > 1 => {
                self.counters.short_writes += 1;
                Ok(len.div_ceil(2))
            }
            // Short faults on one-cell (or zero-cell) transfers, or a
            // kind that does not apply to this direction, degrade to
            // no fault.
            Some(FaultKind::ShortRead) | Some(FaultKind::ShortWrite) | None => Ok(len),
        }
    }

    /// Performs an input transfer: produces up to `len` cells of device
    /// data. Sequential reads advance the device position; positioned
    /// reads use `offset` and leave the position untouched.
    ///
    /// A short (or empty) read happens at end-of-file.
    ///
    /// # Errors
    /// [`KernelError::BadFd`] for unknown descriptors,
    /// [`KernelError::Closed`] after [`Kernel::close`],
    /// [`KernelError::DeviceFailure`] after an EIO fault,
    /// [`KernelError::BadDirection`] for input on a [`Device::Sink`].
    pub fn input(
        &mut self,
        fd: i64,
        len: u32,
        offset: Option<u64>,
    ) -> Result<Vec<i64>, KernelError> {
        let mut out = Vec::new();
        self.input_into(fd, len, offset, &mut out)?;
        Ok(out)
    }

    /// Like [`input`](Self::input), but appends the transferred cells to
    /// `out` instead of allocating a fresh vector.
    ///
    /// The interpreter's syscall loop reuses one scratch buffer across
    /// every `kernelToUser` transfer, so steady-state transfers allocate
    /// nothing. Returns the number of cells appended.
    ///
    /// # Errors
    /// Same as [`input`](Self::input); on error nothing is appended.
    pub fn input_into(
        &mut self,
        fd: i64,
        len: u32,
        offset: Option<u64>,
        out: &mut Vec<i64>,
    ) -> Result<u32, KernelError> {
        let file = self
            .files
            .get_mut(fd as usize)
            .filter(|_| fd >= 0)
            .ok_or(KernelError::BadFd { fd })?;
        if file.closed {
            return Err(KernelError::Closed { fd });
        }
        if file.failed {
            return Err(KernelError::DeviceFailure { fd });
        }
        let before = out.len();
        match &file.device {
            Device::Stream { seed } => {
                let start = offset.unwrap_or(file.pos);
                out.extend((start..start + len as u64).map(|i| stream_cell(*seed, i)));
                if offset.is_none() {
                    file.pos += len as u64;
                }
            }
            Device::File { data } => {
                let start = offset.unwrap_or(file.pos) as usize;
                let end = (start + len as usize).min(data.len());
                if start < data.len() {
                    out.extend_from_slice(&data[start..end]);
                }
                if offset.is_none() {
                    file.pos += (out.len() - before) as u64;
                }
            }
            Device::Sink => return Err(KernelError::BadDirection { fd }),
        }
        let moved = (out.len() - before) as u32;
        file.read += moved as u64;
        self.transfer_counters.transfers += 1;
        self.transfer_counters.cells_in += moved as u64;
        Ok(moved)
    }

    /// Performs an output transfer: consumes `data`. Sequential writes
    /// append to files; positioned writes (`offset = Some`) overwrite at
    /// the given position, zero-extending the file if needed. Sinks and
    /// streams count and discard.
    ///
    /// # Errors
    /// [`KernelError::BadFd`] for unknown descriptors,
    /// [`KernelError::Closed`] after [`Kernel::close`],
    /// [`KernelError::DeviceFailure`] after an EIO fault.
    pub fn output(
        &mut self,
        fd: i64,
        data: &[i64],
        offset: Option<u64>,
    ) -> Result<u32, KernelError> {
        let file = self
            .files
            .get_mut(fd as usize)
            .filter(|_| fd >= 0)
            .ok_or(KernelError::BadFd { fd })?;
        if file.closed {
            return Err(KernelError::Closed { fd });
        }
        if file.failed {
            return Err(KernelError::DeviceFailure { fd });
        }
        if let Device::File { data: contents } = &mut file.device {
            match offset {
                None => contents.extend_from_slice(data),
                Some(at) => {
                    let at = at as usize;
                    if contents.len() < at + data.len() {
                        contents.resize(at + data.len(), 0);
                    }
                    contents[at..at + data.len()].copy_from_slice(data);
                }
            }
        }
        file.written += data.len() as u64;
        self.transfer_counters.transfers += 1;
        self.transfer_counters.cells_out += data.len() as u64;
        Ok(data.len() as u32)
    }
}

/// Deterministic content of cell `index` of a seeded stream device.
fn stream_cell(seed: u64, index: u64) -> i64 {
    let mut x = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x ^ (x >> 31)) & 0x7FFF_FFFF) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_match_the_papers_table() {
        use Direction::*;
        for (no, dir) in [
            (SyscallNo::Read, Input),
            (SyscallNo::Recvfrom, Input),
            (SyscallNo::Pread64, Input),
            (SyscallNo::Readv, Input),
            (SyscallNo::Msgrcv, Input),
            (SyscallNo::Preadv, Input),
            (SyscallNo::Write, Output),
            (SyscallNo::Sendto, Output),
            (SyscallNo::Pwrite64, Output),
            (SyscallNo::Writev, Output),
            (SyscallNo::Msgsnd, Output),
            (SyscallNo::Pwritev, Output),
        ] {
            assert_eq!(no.direction(), dir, "{no}");
        }
        assert!(SyscallNo::Pread64.is_positioned());
        assert!(!SyscallNo::Read.is_positioned());
    }

    #[test]
    fn stream_reads_are_deterministic_and_advance() {
        let mut k = Kernel::new();
        let fd = k.open(Device::Stream { seed: 7 });
        let a = k.input(fd, 4, None).unwrap();
        let b = k.input(fd, 4, None).unwrap();
        assert_ne!(a, b, "sequential stream reads must differ");
        let mut k2 = Kernel::new();
        let fd2 = k2.open(Device::Stream { seed: 7 });
        assert_eq!(k2.input(fd2, 4, None).unwrap(), a, "same seed, same data");
        assert_eq!(k.read_total(fd), Some(8));
    }

    #[test]
    fn file_reads_hit_eof() {
        let mut k = Kernel::new();
        let fd = k.open(Device::File {
            data: vec![1, 2, 3],
        });
        assert_eq!(k.input(fd, 2, None).unwrap(), vec![1, 2]);
        assert_eq!(k.input(fd, 2, None).unwrap(), vec![3]);
        assert_eq!(k.input(fd, 2, None).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn positioned_reads_do_not_move_the_cursor() {
        let mut k = Kernel::new();
        let fd = k.open(Device::File {
            data: vec![10, 20, 30, 40],
        });
        assert_eq!(k.input(fd, 2, Some(2)).unwrap(), vec![30, 40]);
        assert_eq!(k.input(fd, 2, None).unwrap(), vec![10, 20]);
    }

    #[test]
    fn output_appends_to_files_and_counts_on_sinks() {
        let mut k = Kernel::new();
        let file = k.open(Device::File { data: vec![] });
        let sink = k.open(Device::Sink);
        k.output(file, &[5, 6], None).unwrap();
        assert_eq!(k.input(file, 2, Some(0)).unwrap(), vec![5, 6]);
        k.output(sink, &[1, 2, 3], None).unwrap();
        assert_eq!(k.written(sink), Some(3));
    }

    #[test]
    fn bad_fd_and_direction_errors() {
        let mut k = Kernel::new();
        assert_eq!(k.input(0, 1, None), Err(KernelError::BadFd { fd: 0 }));
        assert_eq!(k.output(-1, &[1], None), Err(KernelError::BadFd { fd: -1 }));
        let sink = k.open(Device::Sink);
        assert_eq!(
            k.input(sink, 1, None),
            Err(KernelError::BadDirection { fd: sink })
        );
        assert!(k.input(99, 1, None).is_err());
    }

    #[test]
    fn positioned_writes_overwrite_in_place() {
        let mut k = Kernel::new();
        let fd = k.open(Device::File {
            data: vec![1, 2, 3],
        });
        k.output(fd, &[9], Some(1)).unwrap();
        assert_eq!(k.input(fd, 3, Some(0)).unwrap(), vec![1, 9, 3]);
        // Writing past the end zero-extends.
        k.output(fd, &[7], Some(5)).unwrap();
        assert_eq!(k.input(fd, 6, Some(0)).unwrap(), vec![1, 9, 3, 0, 0, 7]);
    }

    #[test]
    fn with_devices_assigns_dense_fds() {
        let k = Kernel::with_devices(vec![Device::Sink, Device::Stream { seed: 1 }]);
        assert_eq!(k.fd_count(), 2);
    }

    #[test]
    fn closed_fds_reject_all_transfers() {
        let mut k = Kernel::new();
        let fd = k.open(Device::Stream { seed: 1 });
        k.close(fd).unwrap();
        assert_eq!(k.input(fd, 1, None), Err(KernelError::Closed { fd }));
        assert_eq!(k.output(fd, &[1], None), Err(KernelError::Closed { fd }));
        assert_eq!(
            k.prepare_transfer(fd, Direction::Input, 1),
            Err(KernelError::Closed { fd })
        );
        assert_eq!(k.close(fd), Err(KernelError::Closed { fd }));
        assert_eq!(k.close(99), Err(KernelError::BadFd { fd: 99 }));
    }

    #[test]
    fn errno_values_match_posix() {
        assert_eq!(KernelError::BadFd { fd: 0 }.errno(), 9);
        assert_eq!(KernelError::BadDirection { fd: 0 }.errno(), 9);
        assert_eq!(KernelError::Closed { fd: 0 }.errno(), 9);
        assert_eq!(KernelError::Interrupted { fd: 0 }.errno(), 4);
        assert_eq!(KernelError::WouldBlock { fd: 0 }.errno(), 11);
        assert_eq!(KernelError::DeviceFailure { fd: 0 }.errno(), 5);
        assert!(KernelError::Interrupted { fd: 0 }.is_transient());
        assert!(KernelError::WouldBlock { fd: 0 }.is_transient());
        assert!(!KernelError::DeviceFailure { fd: 0 }.is_transient());
    }

    #[test]
    fn prepare_transfer_without_plan_passes_through() {
        let mut k = Kernel::new();
        let fd = k.open(Device::Stream { seed: 1 });
        assert_eq!(k.prepare_transfer(fd, Direction::Input, 8), Ok(8));
        let sink = k.open(Device::Sink);
        assert_eq!(
            k.prepare_transfer(sink, Direction::Input, 8),
            Err(KernelError::BadDirection { fd: sink })
        );
        assert_eq!(k.prepare_transfer(sink, Direction::Output, 8), Ok(8));
        assert_eq!(k.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn transfer_counters_count_only_successful_transfers() {
        let mut k = Kernel::new();
        let fd = k.open(Device::Stream { seed: 1 });
        let sink = k.open(Device::Sink);
        assert_eq!(k.transfer_counters(), TransferCounters::default());
        k.input(fd, 8, None).unwrap();
        k.output(sink, &[1, 2, 3], None).unwrap();
        // Failed attempts move nothing and must not count.
        assert!(k.input(sink, 4, None).is_err());
        assert!(k.output(99, &[1], None).is_err());
        assert_eq!(
            k.transfer_counters(),
            TransferCounters {
                transfers: 2,
                cells_in: 8,
                cells_out: 3,
            }
        );
    }

    #[test]
    fn short_read_fault_halves_the_request() {
        let mut k = Kernel::new();
        let fd = k.open(Device::Stream { seed: 1 });
        k.set_fault_plan(FaultPlan::parse("fd0:shortread:every=2").unwrap());
        assert_eq!(k.prepare_transfer(fd, Direction::Input, 8), Ok(8));
        assert_eq!(k.prepare_transfer(fd, Direction::Input, 8), Ok(4));
        assert_eq!(k.prepare_transfer(fd, Direction::Input, 7), Ok(7));
        assert_eq!(k.prepare_transfer(fd, Direction::Input, 7), Ok(4));
        // One-cell requests cannot be shortened.
        assert_eq!(k.prepare_transfer(fd, Direction::Input, 8), Ok(8));
        assert_eq!(k.prepare_transfer(fd, Direction::Input, 1), Ok(1));
        assert_eq!(k.fault_counters().short_reads, 2);
    }

    #[test]
    fn eio_fault_is_permanent() {
        let mut k = Kernel::new();
        let fd = k.open(Device::Stream { seed: 1 });
        k.set_fault_plan(FaultPlan::parse("fd0:eio:once=3").unwrap());
        assert_eq!(k.prepare_transfer(fd, Direction::Input, 4), Ok(4));
        assert_eq!(k.prepare_transfer(fd, Direction::Input, 4), Ok(4));
        assert_eq!(
            k.prepare_transfer(fd, Direction::Input, 4),
            Err(KernelError::DeviceFailure { fd })
        );
        // The device stays failed even though `once=3` has passed.
        assert_eq!(
            k.prepare_transfer(fd, Direction::Input, 4),
            Err(KernelError::DeviceFailure { fd })
        );
        assert_eq!(k.input(fd, 4, None), Err(KernelError::DeviceFailure { fd }));
        assert_eq!(k.fault_counters().device_failures, 2);
    }

    #[test]
    fn transient_faults_are_counted() {
        let mut k = Kernel::new();
        let fd = k.open(Device::Stream { seed: 1 });
        k.set_fault_plan(FaultPlan::parse("in:eintr:every=2").unwrap());
        assert_eq!(k.prepare_transfer(fd, Direction::Input, 4), Ok(4));
        assert_eq!(
            k.prepare_transfer(fd, Direction::Input, 4),
            Err(KernelError::Interrupted { fd })
        );
        assert_eq!(k.prepare_transfer(fd, Direction::Input, 4), Ok(4));
        assert_eq!(k.fault_counters().transient_errors, 1);
        k.count_errno_return();
        assert_eq!(k.fault_counters().errno_returns, 1);
    }

    #[test]
    fn short_fault_of_wrong_direction_degrades_to_no_fault() {
        let mut k = Kernel::new();
        let fd = k.open(Device::File { data: vec![] });
        k.set_fault_plan(FaultPlan::parse("shortread").unwrap());
        assert_eq!(k.prepare_transfer(fd, Direction::Output, 6), Ok(6));
        assert_eq!(k.fault_counters().short_reads, 0);
    }
}
