//! The kernel model: devices, file descriptors and the system-call table.
//!
//! Guest threads obtain data from external devices (disk, network) and
//! send data to them exclusively through system calls. Following §4.1 of
//! the paper, input system calls (`read`, `recvfrom`, `pread64`, `readv`,
//! `msgrcv`, `preadv`) map to `kernelToUser` events — the kernel writes
//! device data into a user buffer — while output system calls (`write`,
//! `sendto`, `pwrite64`, `writev`, `msgsnd`, `pwritev`) map to
//! `userToKernel` events — the kernel reads the user buffer.

use crate::ir::Operand;
use std::fmt;

/// Direction of a system call's data transfer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Device → user memory (`kernelToUser`).
    Input,
    /// User memory → device (`userToKernel`).
    Output,
}

/// The system calls understood by the kernel model, named after their
/// Linux x86-64 counterparts used by the paper's syscall wrappers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SyscallNo {
    Read,
    Pread64,
    Readv,
    Recvfrom,
    Msgrcv,
    Preadv,
    Write,
    Pwrite64,
    Writev,
    Sendto,
    Msgsnd,
    Pwritev,
}

impl SyscallNo {
    /// Whether the call transfers data into or out of user memory.
    pub fn direction(self) -> Direction {
        match self {
            SyscallNo::Read
            | SyscallNo::Pread64
            | SyscallNo::Readv
            | SyscallNo::Recvfrom
            | SyscallNo::Msgrcv
            | SyscallNo::Preadv => Direction::Input,
            SyscallNo::Write
            | SyscallNo::Pwrite64
            | SyscallNo::Writev
            | SyscallNo::Sendto
            | SyscallNo::Msgsnd
            | SyscallNo::Pwritev => Direction::Output,
        }
    }

    /// Whether the call takes an explicit file offset (positioned I/O).
    pub fn is_positioned(self) -> bool {
        matches!(
            self,
            SyscallNo::Pread64 | SyscallNo::Preadv | SyscallNo::Pwrite64 | SyscallNo::Pwritev
        )
    }

    /// The Linux name of the call.
    pub fn name(self) -> &'static str {
        match self {
            SyscallNo::Read => "read",
            SyscallNo::Pread64 => "pread64",
            SyscallNo::Readv => "readv",
            SyscallNo::Recvfrom => "recvfrom",
            SyscallNo::Msgrcv => "msgrcv",
            SyscallNo::Preadv => "preadv",
            SyscallNo::Write => "write",
            SyscallNo::Pwrite64 => "pwrite64",
            SyscallNo::Writev => "writev",
            SyscallNo::Sendto => "sendto",
            SyscallNo::Msgsnd => "msgsnd",
            SyscallNo::Pwritev => "pwritev",
        }
    }
}

impl fmt::Display for SyscallNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A system-call invocation site in guest code: `no(fd, buf, len[, offset])`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Syscall {
    /// Which call.
    pub no: SyscallNo,
    /// File descriptor operand.
    pub fd: Operand,
    /// Base address of the user buffer, in cells.
    pub buf: Operand,
    /// Transfer length, in cells.
    pub len: Operand,
    /// File offset for positioned calls; ignored otherwise.
    pub offset: Operand,
}

/// An external device backing a file descriptor.
#[derive(Clone, Debug, PartialEq)]
pub enum Device {
    /// An unbounded input stream (network-like). Produces a deterministic
    /// pseudo-random sequence derived from `seed`.
    Stream { seed: u64 },
    /// A finite file with explicit contents; sequential and positioned
    /// reads are supported, writes append.
    File { data: Vec<i64> },
    /// An output-only sink that discards and counts written cells.
    Sink,
}

/// Errors raised by kernel operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// The file descriptor is not open.
    BadFd { fd: i64 },
    /// An input call was issued on an output-only device or vice versa.
    BadDirection { fd: i64 },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::BadFd { fd } => write!(f, "bad file descriptor {fd}"),
            KernelError::BadDirection { fd } => {
                write!(f, "unsupported transfer direction on fd {fd}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

#[derive(Clone, Debug)]
struct OpenFile {
    device: Device,
    pos: u64,
    written: u64,
    read: u64,
}

/// Per-run kernel state: the open-file table.
///
/// File descriptors are dense indices assigned in [`Kernel::open`] order,
/// so guest programs can refer to them as immediates.
#[derive(Clone, Debug, Default)]
pub struct Kernel {
    files: Vec<OpenFile>,
}

impl Kernel {
    /// Creates a kernel with no open files.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a kernel with the given devices pre-opened as fds `0..n`.
    pub fn with_devices(devices: Vec<Device>) -> Self {
        let mut k = Kernel::new();
        for d in devices {
            k.open(d);
        }
        k
    }

    /// Opens a device, returning its file descriptor.
    pub fn open(&mut self, device: Device) -> i64 {
        self.files.push(OpenFile {
            device,
            pos: 0,
            written: 0,
            read: 0,
        });
        (self.files.len() - 1) as i64
    }

    /// Number of open files.
    pub fn fd_count(&self) -> usize {
        self.files.len()
    }

    /// Total cells written to `fd` so far.
    pub fn written(&self, fd: i64) -> Option<u64> {
        self.files.get(fd as usize).map(|f| f.written)
    }

    /// Total cells read from `fd` so far.
    pub fn read_total(&self, fd: i64) -> Option<u64> {
        self.files.get(fd as usize).map(|f| f.read)
    }

    /// Performs an input transfer: produces up to `len` cells of device
    /// data. Sequential reads advance the device position; positioned
    /// reads use `offset` and leave the position untouched.
    ///
    /// A short (or empty) read happens at end-of-file.
    ///
    /// # Errors
    /// [`KernelError::BadFd`] for unknown descriptors,
    /// [`KernelError::BadDirection`] for input on a [`Device::Sink`].
    pub fn input(&mut self, fd: i64, len: u32, offset: Option<u64>) -> Result<Vec<i64>, KernelError> {
        let file = self
            .files
            .get_mut(fd as usize)
            .filter(|_| fd >= 0)
            .ok_or(KernelError::BadFd { fd })?;
        let out = match &file.device {
            Device::Stream { seed } => {
                let start = offset.unwrap_or(file.pos);
                let data: Vec<i64> = (start..start + len as u64)
                    .map(|i| stream_cell(*seed, i))
                    .collect();
                if offset.is_none() {
                    file.pos += len as u64;
                }
                data
            }
            Device::File { data } => {
                let start = offset.unwrap_or(file.pos) as usize;
                let end = (start + len as usize).min(data.len());
                let slice = if start >= data.len() {
                    Vec::new()
                } else {
                    data[start..end].to_vec()
                };
                if offset.is_none() {
                    file.pos += slice.len() as u64;
                }
                slice
            }
            Device::Sink => return Err(KernelError::BadDirection { fd }),
        };
        file.read += out.len() as u64;
        Ok(out)
    }

    /// Performs an output transfer: consumes `data`. Sequential writes
    /// append to files; positioned writes (`offset = Some`) overwrite at
    /// the given position, zero-extending the file if needed. Sinks and
    /// streams count and discard.
    ///
    /// # Errors
    /// [`KernelError::BadFd`] for unknown descriptors.
    pub fn output(
        &mut self,
        fd: i64,
        data: &[i64],
        offset: Option<u64>,
    ) -> Result<u32, KernelError> {
        let file = self
            .files
            .get_mut(fd as usize)
            .filter(|_| fd >= 0)
            .ok_or(KernelError::BadFd { fd })?;
        if let Device::File { data: contents } = &mut file.device {
            match offset {
                None => contents.extend_from_slice(data),
                Some(at) => {
                    let at = at as usize;
                    if contents.len() < at + data.len() {
                        contents.resize(at + data.len(), 0);
                    }
                    contents[at..at + data.len()].copy_from_slice(data);
                }
            }
        }
        file.written += data.len() as u64;
        Ok(data.len() as u32)
    }
}

/// Deterministic content of cell `index` of a seeded stream device.
fn stream_cell(seed: u64, index: u64) -> i64 {
    let mut x = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x ^ (x >> 31)) & 0x7FFF_FFFF) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_match_the_papers_table() {
        use Direction::*;
        for (no, dir) in [
            (SyscallNo::Read, Input),
            (SyscallNo::Recvfrom, Input),
            (SyscallNo::Pread64, Input),
            (SyscallNo::Readv, Input),
            (SyscallNo::Msgrcv, Input),
            (SyscallNo::Preadv, Input),
            (SyscallNo::Write, Output),
            (SyscallNo::Sendto, Output),
            (SyscallNo::Pwrite64, Output),
            (SyscallNo::Writev, Output),
            (SyscallNo::Msgsnd, Output),
            (SyscallNo::Pwritev, Output),
        ] {
            assert_eq!(no.direction(), dir, "{no}");
        }
        assert!(SyscallNo::Pread64.is_positioned());
        assert!(!SyscallNo::Read.is_positioned());
    }

    #[test]
    fn stream_reads_are_deterministic_and_advance() {
        let mut k = Kernel::new();
        let fd = k.open(Device::Stream { seed: 7 });
        let a = k.input(fd, 4, None).unwrap();
        let b = k.input(fd, 4, None).unwrap();
        assert_ne!(a, b, "sequential stream reads must differ");
        let mut k2 = Kernel::new();
        let fd2 = k2.open(Device::Stream { seed: 7 });
        assert_eq!(k2.input(fd2, 4, None).unwrap(), a, "same seed, same data");
        assert_eq!(k.read_total(fd), Some(8));
    }

    #[test]
    fn file_reads_hit_eof() {
        let mut k = Kernel::new();
        let fd = k.open(Device::File { data: vec![1, 2, 3] });
        assert_eq!(k.input(fd, 2, None).unwrap(), vec![1, 2]);
        assert_eq!(k.input(fd, 2, None).unwrap(), vec![3]);
        assert_eq!(k.input(fd, 2, None).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn positioned_reads_do_not_move_the_cursor() {
        let mut k = Kernel::new();
        let fd = k.open(Device::File {
            data: vec![10, 20, 30, 40],
        });
        assert_eq!(k.input(fd, 2, Some(2)).unwrap(), vec![30, 40]);
        assert_eq!(k.input(fd, 2, None).unwrap(), vec![10, 20]);
    }

    #[test]
    fn output_appends_to_files_and_counts_on_sinks() {
        let mut k = Kernel::new();
        let file = k.open(Device::File { data: vec![] });
        let sink = k.open(Device::Sink);
        k.output(file, &[5, 6], None).unwrap();
        assert_eq!(k.input(file, 2, Some(0)).unwrap(), vec![5, 6]);
        k.output(sink, &[1, 2, 3], None).unwrap();
        assert_eq!(k.written(sink), Some(3));
    }

    #[test]
    fn bad_fd_and_direction_errors() {
        let mut k = Kernel::new();
        assert_eq!(k.input(0, 1, None), Err(KernelError::BadFd { fd: 0 }));
        assert_eq!(k.output(-1, &[1], None), Err(KernelError::BadFd { fd: -1 }));
        let sink = k.open(Device::Sink);
        assert_eq!(
            k.input(sink, 1, None),
            Err(KernelError::BadDirection { fd: sink })
        );
        assert!(k.input(99, 1, None).is_err());
    }

    #[test]
    fn positioned_writes_overwrite_in_place() {
        let mut k = Kernel::new();
        let fd = k.open(Device::File { data: vec![1, 2, 3] });
        k.output(fd, &[9], Some(1)).unwrap();
        assert_eq!(k.input(fd, 3, Some(0)).unwrap(), vec![1, 9, 3]);
        // Writing past the end zero-extends.
        k.output(fd, &[7], Some(5)).unwrap();
        assert_eq!(k.input(fd, 6, Some(0)).unwrap(), vec![1, 9, 3, 0, 0, 7]);
    }

    #[test]
    fn with_devices_assigns_dense_fds() {
        let k = Kernel::with_devices(vec![Device::Sink, Device::Stream { seed: 1 }]);
        assert_eq!(k.fd_count(), 2);
    }
}
