//! Self-contained seeded pseudo-random number generation.
//!
//! The VM needs reproducible randomness in three places — the guest
//! `Rand` instruction, the random scheduler, and the simulated-timer
//! jitter — and the fault-injection layer adds a fourth. All of them
//! must be byte-for-byte deterministic per seed, and none needs
//! cryptographic quality, so a small xoshiro256** generator (seeded
//! through SplitMix64) is vendored here instead of pulling in an
//! external crate. This keeps the whole workspace building offline.

/// A small, fast, seedable PRNG (xoshiro256**).
///
/// # Example
/// ```
/// use drms_vm::rng::SmallRng;
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand one seed word into a full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Creates a generator whose full state is derived from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound` is 0.
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Widening multiply-shift: negligibly biased for the bounds the
        // VM uses, and branch-free.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the given range (empty ranges yield the start).
    pub fn gen_range<T, R: GenRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: true with probability `num / den`.
    ///
    /// # Panics
    /// Panics if `den` is 0.
    pub fn gen_ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0, "gen_ratio with zero denominator");
        self.below(den as u64) < num as u64
    }
}

/// Range types [`SmallRng::gen_range`] can sample from.
pub trait GenRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SmallRng) -> T;
}

impl GenRange<i64> for std::ops::Range<i64> {
    fn sample(self, rng: &mut SmallRng) -> i64 {
        if self.start >= self.end {
            return self.start;
        }
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl GenRange<u64> for std::ops::Range<u64> {
    fn sample(self, rng: &mut SmallRng) -> u64 {
        if self.start >= self.end {
            return self.start;
        }
        self.start + rng.below(self.end - self.start)
    }
}

impl GenRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample(self, rng: &mut SmallRng) -> u64 {
        let (start, end) = (*self.start(), *self.end());
        if start >= end {
            return start;
        }
        let span = end - start + 1; // end < u64::MAX in all VM uses; 0 means full range
        if span == 0 {
            return rng.next_u64();
        }
        start + rng.below(span)
    }
}

impl GenRange<u32> for std::ops::Range<u32> {
    fn sample(self, rng: &mut SmallRng) -> u32 {
        if self.start >= self.end {
            return self.start;
        }
        self.start + rng.below((self.end - self.start) as u64) as u32
    }
}

impl GenRange<usize> for std::ops::Range<usize> {
    fn sample(self, rng: &mut SmallRng) -> usize {
        if self.start >= self.end {
            return self.start;
        }
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = r.gen_range(0usize..9);
            assert!(u < 9);
            let w = r.gen_range(10u64..=12);
            assert!((10..=12).contains(&w));
        }
        assert_eq!(r.gen_range(7i64..7), 7, "empty range yields start");
        assert_eq!(r.gen_range(0u64..=0), 0);
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..4 appear");
    }

    #[test]
    fn gen_ratio_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "1/4 ratio gave {hits}/10000");
        assert!(!r.gen_ratio(0, 5));
        assert!(r.gen_ratio(5, 5));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn gen_ratio_rejects_zero_denominator() {
        SmallRng::seed_from_u64(0).gen_ratio(1, 0);
    }
}
