//! Batched tool event delivery.
//!
//! The decoded dispatch loop does not call the tool once per memory
//! access. It appends read/write events into a fixed-capacity
//! struct-of-arrays [`EventBatch`] and flushes the whole batch through
//! [`Tool::observe_batch`](crate::Tool::observe_batch) at block
//! boundaries (or earlier, when the batch fills up or a state-changing
//! event — call, return, sync, syscall, thread switch — must be
//! delivered in order). This is the cheap-online half of the
//! cheap-online/heavy-offline split: the hot loop pays three array
//! pushes per access, and the tool amortizes its per-delivery setup
//! (thread-state lookup, shadow-walk locality) over the batch.
//!
//! Only plain reads and writes are batched. Every other event kind can
//! change tool state that read/write handling depends on (the drms
//! profiler's global count, its shadow stacks), so those are delivered
//! immediately — after flushing any pending batch, preserving the exact
//! event order of per-event delivery. A batch never spans a thread
//! switch, so one `thread` id covers all of its entries.

use drms_trace::{Addr, ThreadId};

/// Kind of one batched memory event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchKind {
    /// A guest load (`on_read`).
    Read,
    /// A guest store (`on_write`).
    Write,
}

/// A fixed-capacity struct-of-arrays buffer of read/write events, all
/// belonging to one thread.
///
/// The parallel `kinds`/`addrs`/`lens` arrays are allocated once (to
/// [`EventBatch::with_capacity`]'s capacity) and reused across flushes;
/// [`EventBatch::allocations`] counts the times backing storage was
/// actually (re)allocated, which the sweep's buffer-reuse test pins to
/// one per worker.
///
/// # Example
/// ```
/// use drms_vm::{BatchKind, EventBatch};
/// use drms_trace::{Addr, ThreadId};
///
/// let mut b = EventBatch::with_capacity(4);
/// b.set_thread(ThreadId::new(0));
/// b.push(BatchKind::Read, Addr::new(100), 1);
/// assert_eq!(b.len(), 1);
/// assert!(!b.is_full());
/// assert_eq!(b.entries().next(), Some((BatchKind::Read, Addr::new(100), 1)));
/// ```
#[derive(Clone, Debug)]
pub struct EventBatch {
    thread: ThreadId,
    /// Configured capacity; always ≥ 1. [`EventBatch::ensure_capacity`]
    /// is the only place that clamps, so every other method can trust
    /// the invariant instead of re-deriving it.
    capacity: usize,
    kinds: Vec<BatchKind>,
    addrs: Vec<Addr>,
    lens: Vec<u32>,
    allocations: u64,
}

impl Default for EventBatch {
    /// An empty one-event batch: the ≥1 capacity invariant holds from
    /// construction on, before any `ensure_capacity` call.
    fn default() -> EventBatch {
        EventBatch {
            thread: ThreadId::default(),
            capacity: 1,
            kinds: Vec::new(),
            addrs: Vec::new(),
            lens: Vec::new(),
            allocations: 0,
        }
    }
}

impl EventBatch {
    /// Creates a batch holding up to `capacity.max(1)` events.
    pub fn with_capacity(capacity: usize) -> EventBatch {
        let mut b = EventBatch::default();
        b.ensure_capacity(capacity);
        b
    }

    /// Grows (never shrinks) the backing arrays to hold `capacity`
    /// events, counting an allocation only when storage actually moves.
    /// Reusing one batch across runs with the same configured capacity
    /// therefore allocates exactly once.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        // The one place the ≥1 clamp lives; `push`/`is_full`/`capacity`
        // assert on and return `self.capacity` directly.
        let capacity = capacity.max(1);
        self.capacity = capacity;
        // Each array reserves against its own deficit: the three Vecs
        // can legally over-allocate differently, so gating all three on
        // `kinds.capacity()` both skips needed `addrs`/`lens` growth
        // (when `kinds` is already large enough) and underflows (when
        // another array is larger than the requested capacity).
        // `reserve_exact(n)` guarantees room for `len + n` elements, so
        // the deficit is measured from `len` (inside the branch
        // `len <= capacity() < capacity`, so it cannot underflow).
        let mut grew = false;
        if self.kinds.capacity() < capacity {
            self.kinds.reserve_exact(capacity - self.kinds.len());
            grew = true;
        }
        if self.addrs.capacity() < capacity {
            self.addrs.reserve_exact(capacity - self.addrs.len());
            grew = true;
        }
        if self.lens.capacity() < capacity {
            self.lens.reserve_exact(capacity - self.lens.len());
            grew = true;
        }
        if grew {
            self.allocations += 1;
        }
    }

    /// The thread every entry belongs to.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Sets the owning thread. Only valid while the batch is empty — a
    /// batch never spans a thread switch.
    #[inline]
    pub fn set_thread(&mut self, thread: ThreadId) {
        debug_assert!(self.is_empty(), "a batch never spans a thread switch");
        self.thread = thread;
    }

    /// Appends one event. The caller flushes before exceeding capacity.
    #[inline]
    pub fn push(&mut self, kind: BatchKind, addr: Addr, len: u32) {
        debug_assert!(self.kinds.len() < self.capacity);
        self.kinds.push(kind);
        self.addrs.push(addr);
        self.lens.push(len);
    }

    /// Number of buffered events.
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the batch holds no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether the next push would exceed capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.kinds.len() >= self.capacity
    }

    /// Configured capacity (always ≥ 1).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Times the backing arrays were (re)allocated since construction.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// The buffered events in emission order.
    pub fn entries(&self) -> impl Iterator<Item = (BatchKind, Addr, u32)> + '_ {
        self.kinds
            .iter()
            .zip(&self.addrs)
            .zip(&self.lens)
            .map(|((&k, &a), &l)| (k, a, l))
    }

    /// The raw parallel arrays `(kinds, addrs, lens)`, for native batch
    /// consumers that want to iterate without the zip adapters.
    pub fn arrays(&self) -> (&[BatchKind], &[Addr], &[u32]) {
        (&self.kinds, &self.addrs, &self.lens)
    }

    /// Empties the batch, keeping its storage.
    #[inline]
    pub fn clear(&mut self) {
        self.kinds.clear();
        self.addrs.clear();
        self.lens.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_entries_roundtrip_in_order() {
        let mut b = EventBatch::with_capacity(8);
        b.set_thread(ThreadId::new(3));
        b.push(BatchKind::Read, Addr::new(10), 1);
        b.push(BatchKind::Write, Addr::new(20), 1);
        b.push(BatchKind::Read, Addr::new(10), 2);
        assert_eq!(b.thread(), ThreadId::new(3));
        let got: Vec<_> = b.entries().collect();
        assert_eq!(
            got,
            vec![
                (BatchKind::Read, Addr::new(10), 1),
                (BatchKind::Write, Addr::new(20), 1),
                (BatchKind::Read, Addr::new(10), 2),
            ]
        );
        let (kinds, addrs, lens) = b.arrays();
        assert_eq!(kinds.len(), 3);
        assert_eq!(addrs[1], Addr::new(20));
        assert_eq!(lens[2], 2);
    }

    #[test]
    fn capacity_and_fullness() {
        let mut b = EventBatch::with_capacity(2);
        assert_eq!(b.capacity(), 2);
        assert!(!b.is_full());
        b.push(BatchKind::Read, Addr::new(1), 1);
        b.push(BatchKind::Write, Addr::new(2), 1);
        assert!(b.is_full());
        b.clear();
        assert!(b.is_empty() && !b.is_full());
        // Zero-capacity requests degrade to one-event batches.
        let z = EventBatch::with_capacity(0);
        assert_eq!(z.capacity(), 1);
    }

    #[test]
    fn ensure_capacity_grows_each_array_on_its_own_deficit() {
        // Diverge the backing arrays first: any Vec may legally hold
        // more capacity than its siblings (allocator rounding, a clone,
        // a swap). The old code gated all three reserves on
        // `kinds.capacity()` alone, so this request both skipped the
        // `lens` growth and underflowed `capacity - addrs.capacity()`.
        let mut b = EventBatch::with_capacity(4);
        b.addrs.reserve_exact(256);
        assert!(b.addrs.capacity() >= 256);
        b.ensure_capacity(128);
        assert!(b.kinds.capacity() >= 128);
        assert!(b.lens.capacity() >= 128);

        // The converse divergence: `kinds` already large enough must
        // not skip growing the two smaller arrays.
        let mut b = EventBatch::with_capacity(1);
        b.kinds.reserve_exact(512);
        b.ensure_capacity(256);
        assert!(b.addrs.capacity() >= 256);
        assert!(b.lens.capacity() >= 256);
        let before = b.allocations();
        b.set_thread(ThreadId::new(0));
        for i in 0..256 {
            b.push(BatchKind::Write, Addr::new(i + 1), 1);
        }
        assert_eq!(
            b.allocations(),
            before,
            "filling to capacity reuses storage"
        );
    }

    #[test]
    fn default_batch_holds_one_event() {
        // The ≥1 invariant is established at construction, not patched
        // up by `.max(1)` at each use site.
        let mut b = EventBatch::default();
        assert_eq!(b.capacity(), 1);
        assert!(!b.is_full());
        b.push(BatchKind::Read, Addr::new(7), 1);
        assert!(b.is_full());
    }

    #[test]
    fn reuse_with_stable_capacity_allocates_once() {
        let mut b = EventBatch::with_capacity(64);
        assert_eq!(b.allocations(), 1);
        for _ in 0..10 {
            b.ensure_capacity(64);
            for i in 0..64 {
                b.push(BatchKind::Read, Addr::new(i + 1), 1);
            }
            b.clear();
        }
        assert_eq!(b.allocations(), 1, "reuse never reallocates");
        b.ensure_capacity(128);
        assert_eq!(b.allocations(), 2, "growth is a counted allocation");
        b.ensure_capacity(32);
        assert_eq!(b.capacity(), 32, "capacity may shrink logically");
        assert_eq!(b.allocations(), 2, "…without touching storage");
    }
}
