//! Structured construction of guest programs.
//!
//! [`ProgramBuilder`] assembles routines, global arrays and synchronization
//! objects; [`FnBuilder`] provides structured control flow (`if`/`while`/
//! `for`) and expression helpers on top of raw basic blocks, so workloads
//! read almost like source code:
//!
//! ```
//! use drms_vm::{ProgramBuilder, run_program, RunConfig, NullTool};
//!
//! let mut pb = ProgramBuilder::new();
//! let main = pb.declare("main", 0);
//! pb.define(main, |f| {
//!     let buf = f.alloc(8);
//!     f.for_range(0, 8, |f, i| {
//!         let sq = f.mul(i, i);
//!         f.store(buf, i, sq);
//!     });
//!     f.ret(None);
//! });
//! let program = pb.finish(main).unwrap();
//! let stats = run_program(&program, RunConfig::default(), &mut NullTool::default()).unwrap();
//! assert!(stats.instructions > 0);
//! ```

use crate::ir::{BinOp, Block, Inst, Operand, Program, Reg, Routine, Terminator};
use crate::kernel::{Syscall, SyscallNo};
use drms_trace::{Addr, BlockId, RoutineId};

/// Base address of the first global array.
const GLOBAL_BASE: u64 = 0x100;
/// Minimum heap base, leaving room for globals below.
const MIN_HEAP_BASE: u64 = 0x1_0000;

/// Errors raised when finishing a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A declared routine was never defined.
    UndefinedRoutine { name: String },
    /// The structural validator rejected the assembled program.
    Invalid(crate::ir::ValidateError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UndefinedRoutine { name } => {
                write!(f, "routine `{name}` declared but never defined")
            }
            BuildError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

struct RoutineSlot {
    name: String,
    params: u16,
    body: Option<Routine>,
}

/// Incremental builder for a [`Program`].
#[derive(Default)]
pub struct ProgramBuilder {
    routines: Vec<RoutineSlot>,
    semaphores: Vec<i64>,
    mutexes: u32,
    conds: u32,
    globals: Vec<(Addr, Vec<i64>)>,
    next_global: u64,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder {
            next_global: GLOBAL_BASE,
            ..Default::default()
        }
    }

    /// Declares a routine with `params` parameters, returning its id.
    /// Declarations permit forward references and mutual recursion; every
    /// declared routine must later be [`define`](Self::define)d.
    pub fn declare(&mut self, name: &str, params: u16) -> RoutineId {
        self.routines.push(RoutineSlot {
            name: name.to_owned(),
            params,
            body: None,
        });
        RoutineId::new((self.routines.len() - 1) as u32)
    }

    /// Defines the body of a previously declared routine.
    ///
    /// The closure receives a [`FnBuilder`]; parameters occupy the first
    /// registers (see [`FnBuilder::param`]). If the last block is left
    /// unterminated, a `ret` (without value) is appended.
    ///
    /// # Panics
    /// Panics if `id` is unknown or already defined.
    pub fn define(&mut self, id: RoutineId, body: impl FnOnce(&mut FnBuilder)) {
        let slot = &self.routines[id.index() as usize];
        assert!(slot.body.is_none(), "routine `{}` defined twice", slot.name);
        let mut fb = FnBuilder::new(slot.name.clone(), slot.params);
        body(&mut fb);
        let routine = fb.finish();
        self.routines[id.index() as usize].body = Some(routine);
    }

    /// Declares and defines a routine in one step.
    pub fn function(
        &mut self,
        name: &str,
        params: u16,
        body: impl FnOnce(&mut FnBuilder),
    ) -> RoutineId {
        let id = self.declare(name, params);
        self.define(id, body);
        id
    }

    /// Adds a semaphore with the given initial value, returning its index.
    pub fn semaphore(&mut self, initial: i64) -> u32 {
        self.semaphores.push(initial);
        (self.semaphores.len() - 1) as u32
    }

    /// Adds a mutex, returning its index.
    pub fn mutex(&mut self) -> u32 {
        self.mutexes += 1;
        self.mutexes - 1
    }

    /// Adds a condition variable, returning its index.
    pub fn condvar(&mut self) -> u32 {
        self.conds += 1;
        self.conds - 1
    }

    /// Reserves a zero-initialized global array of `cells` cells and
    /// returns its base address.
    pub fn global(&mut self, cells: u64) -> Addr {
        self.global_with(vec![0; cells as usize])
    }

    /// Reserves a global array with explicit initial contents.
    pub fn global_with(&mut self, data: Vec<i64>) -> Addr {
        let base = Addr::new(self.next_global);
        self.next_global = (self.next_global + data.len().max(1) as u64 + 7) & !7;
        self.globals.push((base, data));
        base
    }

    /// Assembles the program with `main` as the entry routine.
    ///
    /// # Errors
    /// [`BuildError::UndefinedRoutine`] if a declaration lacks a body;
    /// [`BuildError::Invalid`] if structural validation fails.
    pub fn finish(self, main: RoutineId) -> Result<Program, BuildError> {
        let mut routines = Vec::with_capacity(self.routines.len());
        for slot in self.routines {
            match slot.body {
                Some(r) => routines.push(r),
                None => {
                    return Err(BuildError::UndefinedRoutine { name: slot.name });
                }
            }
        }
        let program = Program {
            routines,
            main,
            semaphores: self.semaphores,
            mutexes: self.mutexes,
            conds: self.conds,
            globals: self.globals,
            heap_base: MIN_HEAP_BASE.max((self.next_global + 0xFFF) & !0xFFF),
        };
        program.validate().map_err(BuildError::Invalid)?;
        Ok(program)
    }
}

struct ProtoBlock {
    insts: Vec<Inst>,
    term: Option<Terminator>,
}

/// Builder for one routine body.
///
/// Instructions are emitted into the *current block*; structured helpers
/// (`if_then`, `if_else`, `while_loop`, `for_range`) create and wire basic
/// blocks internally. Expression helpers allocate fresh registers.
pub struct FnBuilder {
    name: String,
    params: u16,
    regs: u16,
    blocks: Vec<ProtoBlock>,
    current: usize,
}

impl FnBuilder {
    fn new(name: String, params: u16) -> Self {
        FnBuilder {
            name,
            params,
            regs: params,
            blocks: vec![ProtoBlock {
                insts: Vec::new(),
                term: None,
            }],
            current: 0,
        }
    }

    /// The routine name under construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    /// Panics if `i` is not less than the declared parameter count.
    pub fn param(&self, i: u16) -> Reg {
        assert!(i < self.params, "parameter {i} out of range");
        i
    }

    /// Allocates a fresh register (initially zero).
    pub fn fresh(&mut self) -> Reg {
        let r = self.regs;
        self.regs = self.regs.checked_add(1).expect("register space exhausted");
        r
    }

    /// Emits a raw instruction into the current block.
    ///
    /// # Panics
    /// Panics if the current block is already terminated.
    pub fn emit(&mut self, inst: Inst) {
        let b = &mut self.blocks[self.current];
        assert!(b.term.is_none(), "emitting into terminated block");
        b.insts.push(inst);
    }

    // ---- control-flow primitives -------------------------------------

    /// Creates a new, empty basic block.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(ProtoBlock {
            insts: Vec::new(),
            term: None,
        });
        BlockId::new((self.blocks.len() - 1) as u32)
    }

    /// Makes `block` the current block for subsequent emissions.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block.index() as usize;
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: impl Into<Operand>, then_block: BlockId, else_block: BlockId) {
        self.terminate(Terminator::Branch {
            cond: cond.into(),
            then_block,
            else_block,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Terminator::Ret(value));
    }

    /// Shorthand for returning a value.
    pub fn ret_val(&mut self, value: impl Into<Operand>) {
        self.ret(Some(value.into()));
    }

    fn terminate(&mut self, term: Terminator) {
        let b = &mut self.blocks[self.current];
        assert!(b.term.is_none(), "block already terminated");
        b.term = Some(term);
    }

    /// Whether the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        self.blocks[self.current].term.is_some()
    }

    // ---- expressions ---------------------------------------------------

    fn bin(&mut self, op: BinOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Bin {
            op,
            dst,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        dst
    }

    /// `lhs + rhs` into a fresh register.
    pub fn add(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Add, lhs, rhs)
    }
    /// `lhs - rhs` into a fresh register.
    pub fn sub(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Sub, lhs, rhs)
    }
    /// `lhs * rhs` into a fresh register.
    pub fn mul(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Mul, lhs, rhs)
    }
    /// `lhs / rhs` into a fresh register.
    pub fn div(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Div, lhs, rhs)
    }
    /// `lhs % rhs` into a fresh register.
    pub fn rem(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Rem, lhs, rhs)
    }
    /// Bitwise `lhs & rhs`.
    pub fn bit_and(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::And, lhs, rhs)
    }
    /// Bitwise `lhs | rhs`.
    pub fn bit_or(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Or, lhs, rhs)
    }
    /// Bitwise `lhs ^ rhs`.
    pub fn bit_xor(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Xor, lhs, rhs)
    }
    /// `lhs == rhs` (1 or 0).
    pub fn eq(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Eq, lhs, rhs)
    }
    /// `lhs != rhs` (1 or 0).
    pub fn ne(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Ne, lhs, rhs)
    }
    /// `lhs < rhs` (1 or 0).
    pub fn lt(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Lt, lhs, rhs)
    }
    /// `lhs <= rhs` (1 or 0).
    pub fn le(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Le, lhs, rhs)
    }
    /// `lhs > rhs` (1 or 0).
    pub fn gt(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Gt, lhs, rhs)
    }
    /// `lhs >= rhs` (1 or 0).
    pub fn ge(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Ge, lhs, rhs)
    }
    /// `min(lhs, rhs)`.
    pub fn min(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Min, lhs, rhs)
    }
    /// `max(lhs, rhs)`.
    pub fn max(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Max, lhs, rhs)
    }

    /// Copies `src` into a fresh register.
    pub fn copy(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Mov {
            dst,
            src: src.into(),
        });
        dst
    }

    /// Assigns `src` to an existing register.
    pub fn assign(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.emit(Inst::Mov {
            dst,
            src: src.into(),
        });
    }

    /// Loads `memory[base + offset]` into a fresh register.
    pub fn load(&mut self, base: impl Into<Operand>, offset: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Load {
            dst,
            base: base.into(),
            offset: offset.into(),
        });
        dst
    }

    /// Stores `src` into `memory[base + offset]`.
    pub fn store(
        &mut self,
        base: impl Into<Operand>,
        offset: impl Into<Operand>,
        src: impl Into<Operand>,
    ) {
        self.emit(Inst::Store {
            base: base.into(),
            offset: offset.into(),
            src: src.into(),
        });
    }

    /// Bump-allocates `cells` memory cells; returns the base register.
    pub fn alloc(&mut self, cells: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Alloc {
            dst,
            cells: cells.into(),
        });
        dst
    }

    /// Calls `routine`, discarding its return value.
    pub fn call_void(&mut self, routine: RoutineId, args: &[Operand]) {
        self.emit(Inst::Call {
            routine,
            args: args.to_vec(),
            dst: None,
        });
    }

    /// Calls `routine`; the return value lands in a fresh register.
    pub fn call(&mut self, routine: RoutineId, args: &[Operand]) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Call {
            routine,
            args: args.to_vec(),
            dst: Some(dst),
        });
        dst
    }

    /// Spawns a thread rooted at `routine`; returns the register holding
    /// the new thread's id.
    pub fn spawn(&mut self, routine: RoutineId, args: &[Operand]) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Spawn {
            routine,
            args: args.to_vec(),
            dst,
        });
        dst
    }

    /// Joins the thread whose id is in `thread`.
    pub fn join(&mut self, thread: impl Into<Operand>) {
        self.emit(Inst::Join {
            thread: thread.into(),
        });
    }

    /// Semaphore P.
    pub fn sem_wait(&mut self, sem: u32) {
        self.emit(Inst::SemWait { sem });
    }
    /// Semaphore V.
    pub fn sem_signal(&mut self, sem: u32) {
        self.emit(Inst::SemSignal { sem });
    }
    /// Mutex acquire.
    pub fn lock(&mut self, mutex: u32) {
        self.emit(Inst::MutexLock { mutex });
    }
    /// Mutex release.
    pub fn unlock(&mut self, mutex: u32) {
        self.emit(Inst::MutexUnlock { mutex });
    }
    /// Condition wait (releases and re-acquires `mutex`).
    pub fn cond_wait(&mut self, cond: u32, mutex: u32) {
        self.emit(Inst::CondWait { cond, mutex });
    }
    /// Condition signal.
    pub fn cond_signal(&mut self, cond: u32) {
        self.emit(Inst::CondSignal { cond });
    }
    /// Condition broadcast.
    pub fn cond_broadcast(&mut self, cond: u32) {
        self.emit(Inst::CondBroadcast { cond });
    }
    /// Ends the scheduling quantum voluntarily.
    pub fn yield_now(&mut self) {
        self.emit(Inst::Yield);
    }

    /// Uniform random integer in `[0, bound)` from the thread's RNG.
    pub fn rand(&mut self, bound: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Rand {
            dst,
            bound: bound.into(),
        });
        dst
    }

    /// Emits a system call; returns the register holding the transferred
    /// cell count. Positioned calls take `offset`, others ignore it.
    pub fn syscall(
        &mut self,
        no: SyscallNo,
        fd: impl Into<Operand>,
        buf: impl Into<Operand>,
        len: impl Into<Operand>,
        offset: impl Into<Operand>,
    ) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Syscall {
            call: Syscall {
                no,
                fd: fd.into(),
                buf: buf.into(),
                len: len.into(),
                offset: offset.into(),
            },
            dst: Some(dst),
        });
        dst
    }

    /// Like [`FnBuilder::syscall`], but retries while the kernel reports a
    /// transient error (`-EINTR` or `-EAGAIN`), yielding the quantum
    /// between attempts. Returns the register holding the first
    /// non-transient result: a transferred cell count, `0` at end of
    /// stream, or a hard negative errno such as `-EIO`.
    ///
    /// On a fault-free run the loop condition fails immediately, so
    /// exactly one system call executes — instrumentation counts match
    /// plain [`FnBuilder::syscall`].
    pub fn syscall_retrying(
        &mut self,
        no: SyscallNo,
        fd: impl Into<Operand>,
        buf: impl Into<Operand>,
        len: impl Into<Operand>,
        offset: impl Into<Operand>,
    ) -> Reg {
        let fd = self.copy(fd);
        let buf = self.copy(buf);
        let len = self.copy(len);
        let offset = self.copy(offset);
        let result = self.syscall(no, fd, buf, len, offset);
        self.while_loop(
            |f| {
                let eintr = f.eq(result, -4);
                let eagain = f.eq(result, -11);
                Operand::Reg(f.add(eintr, eagain))
            },
            |f| {
                f.yield_now();
                let again = f.syscall(no, fd, buf, len, offset);
                f.assign(result, again);
            },
        );
        result
    }

    /// Transfers exactly `len` cells through repeated system calls,
    /// resuming after short transfers and retrying transient errors
    /// (`-EINTR`/`-EAGAIN`, with a yield between attempts). Stops early
    /// at end of stream or on a hard error such as `-EIO`. Returns the
    /// register holding the total cells actually transferred.
    ///
    /// Each resumed attempt advances `buf` and `offset` by the cells
    /// already moved, so positioned reads continue where the short
    /// transfer stopped. On a fault-free run the first call moves all
    /// `len` cells and exactly one system call executes.
    pub fn syscall_full(
        &mut self,
        no: SyscallNo,
        fd: impl Into<Operand>,
        buf: impl Into<Operand>,
        len: impl Into<Operand>,
        offset: impl Into<Operand>,
    ) -> Reg {
        let fd = self.copy(fd);
        let buf = self.copy(buf);
        let len = self.copy(len);
        let offset = self.copy(offset);
        let done = self.copy(0);
        let stop = self.copy(0);
        self.while_loop(
            |f| {
                let more = f.lt(done, len);
                let going = f.eq(stop, 0);
                Operand::Reg(f.mul(more, going))
            },
            |f| {
                let pos = f.add(buf, done);
                let remaining = f.sub(len, done);
                let off = f.add(offset, done);
                let n = f.syscall(no, fd, pos, remaining, off);
                let eintr = f.eq(n, -4);
                let eagain = f.eq(n, -11);
                let transient = f.add(eintr, eagain);
                f.if_else(
                    transient,
                    |f| f.yield_now(),
                    |f| {
                        let progressed = f.gt(n, 0);
                        f.if_else(
                            progressed,
                            |f| {
                                let new_done = f.add(done, n);
                                f.assign(done, new_done);
                            },
                            |f| f.assign(stop, 1),
                        );
                    },
                );
            },
        );
        done
    }

    // ---- structured control flow ----------------------------------------

    /// `if cond != 0 { then }`.
    pub fn if_then(&mut self, cond: impl Into<Operand>, then: impl FnOnce(&mut Self)) {
        let then_block = self.new_block();
        let merge = self.new_block();
        self.branch(cond, then_block, merge);
        self.switch_to(then_block);
        then(self);
        if !self.is_terminated() {
            self.jump(merge);
        }
        self.switch_to(merge);
    }

    /// `if cond != 0 { then } else { otherwise }`.
    pub fn if_else(
        &mut self,
        cond: impl Into<Operand>,
        then: impl FnOnce(&mut Self),
        otherwise: impl FnOnce(&mut Self),
    ) {
        let then_block = self.new_block();
        let else_block = self.new_block();
        let merge = self.new_block();
        self.branch(cond, then_block, else_block);
        self.switch_to(then_block);
        then(self);
        if !self.is_terminated() {
            self.jump(merge);
        }
        self.switch_to(else_block);
        otherwise(self);
        if !self.is_terminated() {
            self.jump(merge);
        }
        self.switch_to(merge);
    }

    /// `while cond() != 0 { body }`. The condition closure emits into the
    /// loop-head block and returns the condition operand.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Operand,
        body: impl FnOnce(&mut Self),
    ) {
        let head = self.new_block();
        let body_block = self.new_block();
        let exit = self.new_block();
        self.jump(head);
        self.switch_to(head);
        let c = cond(self);
        self.branch(c, body_block, exit);
        self.switch_to(body_block);
        body(self);
        if !self.is_terminated() {
            self.jump(head);
        }
        self.switch_to(exit);
    }

    /// `for i in lo..hi { body(i) }`; `i` is a fresh register visible to
    /// the body.
    pub fn for_range(
        &mut self,
        lo: impl Into<Operand>,
        hi: impl Into<Operand>,
        body: impl FnOnce(&mut Self, Reg),
    ) {
        let i = self.copy(lo);
        let hi_reg = self.copy(hi);
        self.while_loop(
            |f| Operand::Reg(f.lt(i, hi_reg)),
            |f| {
                body(f, i);
                let next = f.add(i, 1);
                f.assign(i, next);
            },
        );
    }

    fn finish(mut self) -> Routine {
        if self.blocks[self.current].term.is_none() {
            self.ret(None);
        }
        let blocks = self
            .blocks
            .into_iter()
            .map(|b| Block {
                insts: b.insts,
                term: b.term.unwrap_or(Terminator::Ret(None)),
            })
            .collect();
        Routine {
            name: self.name,
            params: self.params,
            regs: self.regs.max(1),
            blocks,
            entry: BlockId::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_program;
    use crate::stats::RunConfig;
    use crate::tool::NullTool;
    use drms_trace::Addr;

    fn run(pb: ProgramBuilder, main: RoutineId) -> (Program, crate::stats::RunStats) {
        let p = pb.finish(main).expect("valid program");
        let stats = run_program(&p, RunConfig::default(), &mut NullTool).expect("run");
        (p, stats)
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(4);
        let main = pb.function("main", 0, |f| {
            let a = f.add(2, 3);
            let b = f.mul(a, a);
            f.store(g.raw() as i64, 0, b);
            f.ret(None);
        });
        let p = pb.finish(main).unwrap();
        let mut vm = crate::interp::Vm::new(&p, RunConfig::default()).unwrap();
        vm.run(&mut NullTool).unwrap();
        assert_eq!(vm.memory().load(g), 25);
    }

    #[test]
    fn if_else_both_arms() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(2);
        let main = pb.function("main", 0, |f| {
            let c = f.lt(1, 2);
            f.if_else(
                c,
                |f| f.store(g.raw() as i64, 0, 10),
                |f| f.store(g.raw() as i64, 0, 20),
            );
            let c2 = f.lt(2, 1);
            f.if_else(
                c2,
                |f| f.store(g.raw() as i64, 1, 10),
                |f| f.store(g.raw() as i64, 1, 20),
            );
            f.ret(None);
        });
        let p = pb.finish(main).unwrap();
        let mut vm = crate::interp::Vm::new(&p, RunConfig::default()).unwrap();
        vm.run(&mut NullTool).unwrap();
        assert_eq!(vm.memory().load(g), 10);
        assert_eq!(vm.memory().load(g.offset(1)), 20);
    }

    #[test]
    fn for_range_accumulates() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(1);
        let main = pb.function("main", 0, |f| {
            let acc = f.copy(0);
            f.for_range(0, 10, |f, i| {
                let s = f.add(acc, i);
                f.assign(acc, s);
            });
            f.store(g.raw() as i64, 0, acc);
            f.ret(None);
        });
        let p = pb.finish(main).unwrap();
        let mut vm = crate::interp::Vm::new(&p, RunConfig::default()).unwrap();
        vm.run(&mut NullTool).unwrap();
        assert_eq!(vm.memory().load(g), 45);
    }

    #[test]
    fn call_returns_value() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(1);
        let double = pb.function("double", 1, |f| {
            let x = f.param(0);
            let d = f.add(x, x);
            f.ret_val(d);
        });
        let main = pb.function("main", 0, |f| {
            let v = f.call(double, &[Operand::Imm(21)]);
            f.store(g.raw() as i64, 0, v);
            f.ret(None);
        });
        let p = pb.finish(main).unwrap();
        let mut vm = crate::interp::Vm::new(&p, RunConfig::default()).unwrap();
        vm.run(&mut NullTool).unwrap();
        assert_eq!(vm.memory().load(g), 42);
    }

    #[test]
    fn recursion_factorial() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(1);
        let fact = pb.declare("fact", 1);
        pb.define(fact, |f| {
            let n = f.param(0);
            let is_base = f.le(n, 1);
            f.if_then(is_base, |f| f.ret_val(1));
            let m = f.sub(n, 1);
            let rec = f.call(fact, &[Operand::Reg(m)]);
            let out = f.mul(n, rec);
            f.ret_val(out);
        });
        let main = pb.function("main", 0, |f| {
            let v = f.call(fact, &[Operand::Imm(6)]);
            f.store(g.raw() as i64, 0, v);
            f.ret(None);
        });
        let p = pb.finish(main).unwrap();
        let mut vm = crate::interp::Vm::new(&p, RunConfig::default()).unwrap();
        vm.run(&mut NullTool).unwrap();
        assert_eq!(vm.memory().load(g), 720);
    }

    #[test]
    fn while_loop_countdown() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(1);
        let main = pb.function("main", 0, |f| {
            let n = f.copy(5);
            let steps = f.copy(0);
            f.while_loop(
                |f| Operand::Reg(f.gt(n, 0)),
                |f| {
                    let m = f.sub(n, 1);
                    f.assign(n, m);
                    let s = f.add(steps, 1);
                    f.assign(steps, s);
                },
            );
            f.store(g.raw() as i64, 0, steps);
        });
        let p = pb.finish(main).unwrap();
        let mut vm = crate::interp::Vm::new(&p, RunConfig::default()).unwrap();
        vm.run(&mut NullTool).unwrap();
        assert_eq!(vm.memory().load(g), 5);
    }

    #[test]
    fn syscall_full_collapses_to_one_syscall_when_fault_free() {
        use crate::kernel::Device;
        let mut pb = ProgramBuilder::new();
        let g = pb.global(1);
        let main = pb.function("main", 0, |f| {
            let buf = f.alloc(8);
            let n = f.syscall_full(SyscallNo::Read, 0, buf, 8, 0);
            f.store(g.raw() as i64, 0, n);
        });
        let p = pb.finish(main).unwrap();
        let cfg = RunConfig::with_devices(vec![Device::Stream { seed: 1 }]);
        let mut vm = crate::interp::Vm::new(&p, cfg).unwrap();
        let stats = vm.run(&mut NullTool).unwrap();
        assert_eq!(stats.syscalls, 1, "no retries without a fault plan");
        assert_eq!(vm.memory().load(g), 8);
    }

    #[test]
    fn syscall_full_resumes_short_reads_until_complete() {
        use crate::fault::FaultPlan;
        use crate::kernel::Device;
        let mut pb = ProgramBuilder::new();
        let g = pb.global(1);
        let main = pb.function("main", 0, |f| {
            let buf = f.alloc(8);
            let n = f.syscall_full(SyscallNo::Read, 0, buf, 8, 0);
            f.store(g.raw() as i64, 0, n);
        });
        let p = pb.finish(main).unwrap();
        let cfg = RunConfig {
            faults: Some(FaultPlan::parse("fd0:shortread:every=1").unwrap()),
            ..RunConfig::with_devices(vec![Device::Stream { seed: 1 }])
        };
        let mut vm = crate::interp::Vm::new(&p, cfg).unwrap();
        let stats = vm.run(&mut NullTool).unwrap();
        // Deliveries: 4, 2, 1 (short each time), then the final 1-cell
        // read is too small to halve and completes the transfer.
        assert_eq!(vm.memory().load(g), 8, "all cells eventually arrive");
        assert_eq!(stats.syscalls, 4);
        assert_eq!(stats.faults.short_reads, 3);
    }

    #[test]
    fn syscall_retrying_retries_transient_errors() {
        use crate::fault::FaultPlan;
        use crate::kernel::Device;
        let mut pb = ProgramBuilder::new();
        let g = pb.global(1);
        let main = pb.function("main", 0, |f| {
            let buf = f.alloc(4);
            let n = f.syscall_retrying(SyscallNo::Read, 0, buf, 4, 0);
            f.store(g.raw() as i64, 0, n);
        });
        let p = pb.finish(main).unwrap();
        let cfg = RunConfig {
            faults: Some(FaultPlan::parse("in:eintr:once=1").unwrap()),
            ..RunConfig::with_devices(vec![Device::Stream { seed: 1 }])
        };
        let mut vm = crate::interp::Vm::new(&p, cfg).unwrap();
        let stats = vm.run(&mut NullTool).unwrap();
        assert_eq!(vm.memory().load(g), 4, "retry masks the EINTR");
        assert_eq!(stats.syscalls, 2);
        assert_eq!(stats.faults.transient_errors, 1);
    }

    #[test]
    fn syscall_full_stops_on_hard_device_failure() {
        use crate::fault::FaultPlan;
        use crate::kernel::Device;
        let mut pb = ProgramBuilder::new();
        let g = pb.global(1);
        let main = pb.function("main", 0, |f| {
            let buf = f.alloc(8);
            let n = f.syscall_full(SyscallNo::Read, 0, buf, 8, 0);
            f.store(g.raw() as i64, 0, n);
        });
        let p = pb.finish(main).unwrap();
        let cfg = RunConfig {
            faults: Some(FaultPlan::parse("fd0:eio:once=1").unwrap()),
            ..RunConfig::with_devices(vec![Device::Stream { seed: 1 }])
        };
        let mut vm = crate::interp::Vm::new(&p, cfg).unwrap();
        let stats = vm.run(&mut NullTool).unwrap();
        assert_eq!(vm.memory().load(g), 0, "hard errors are not retried");
        assert_eq!(stats.syscalls, 1);
        assert_eq!(stats.faults.device_failures, 1);
    }

    #[test]
    fn globals_do_not_overlap() {
        let mut pb = ProgramBuilder::new();
        let a = pb.global(3);
        let b = pb.global_with(vec![7, 8]);
        assert!(b.raw() >= a.raw() + 3);
        let main = pb.function("main", 0, |f| f.ret(None));
        let p = pb.finish(main).unwrap();
        assert!(p.heap_base() > b.raw() + 2);
        let vm = crate::interp::Vm::new(&p, RunConfig::default()).unwrap();
        assert_eq!(vm.memory().load(b), 7);
        assert_eq!(vm.memory().load(Addr::new(b.raw() + 1)), 8);
    }

    #[test]
    fn undefined_routine_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main", 0);
        assert_eq!(
            pb.finish(main),
            Err(BuildError::UndefinedRoutine {
                name: "main".into()
            })
        );
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn double_definition_panics() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main", 0);
        pb.define(main, |f| f.ret(None));
        pb.define(main, |f| f.ret(None));
    }

    #[test]
    fn spawn_join_threads() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(4);
        let worker = pb.function("worker", 1, |f| {
            let slot = f.param(0);
            let v = f.add(slot, 100);
            f.store(g.raw() as i64, slot, v);
            f.ret(None);
        });
        let main = pb.function("main", 0, |f| {
            let t1 = f.spawn(worker, &[Operand::Imm(0)]);
            let t2 = f.spawn(worker, &[Operand::Imm(1)]);
            f.join(t1);
            f.join(t2);
            f.ret(None);
        });
        let p = pb.finish(main).unwrap();
        let mut vm = crate::interp::Vm::new(&p, RunConfig::default()).unwrap();
        let stats = vm.run(&mut NullTool).unwrap();
        assert_eq!(stats.threads, 3);
        assert_eq!(vm.memory().load(g), 100);
        assert_eq!(vm.memory().load(g.offset(1)), 101);
    }

    #[test]
    fn stats_are_populated() {
        let mut pb = ProgramBuilder::new();
        let main = pb.function("main", 0, |f| {
            f.for_range(0, 100, |f, i| {
                let _ = f.mul(i, i);
            });
        });
        let (_, stats) = run(pb, main);
        assert!(stats.instructions > 100);
        assert!(stats.basic_blocks > 100);
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.per_thread_blocks.len(), 1);
        assert_eq!(stats.basic_blocks, stats.total_blocks());
    }
}
