//! The scheduling engine of the serializing VM.
//!
//! [`Scheduler`] owns every scheduling decision of a run: which runnable
//! thread gets the next slice, how long the slice lasts, and why it
//! ends. Centralizing the logic here gives all four policies one code
//! path the interpreter drives blindly:
//!
//! * **RoundRobin / Random** — the classic block-quantum policies;
//!   their behavior is bit-identical to the pre-scheduler interpreter.
//! * **Chaos** — a seeded fuzzing policy: random thread pick, a random
//!   per-slice quantum in `[1, quantum]`, and probabilistic preemption
//!   right after synchronization operations and kernel transfers — the
//!   points where interleaving actually changes drms.
//! * **Replay** — drives the run from a recorded [`Schedule`],
//!   reproducing the original interleaving exactly (strict mode), or as
//!   closely as the program still allows (relaxed mode, used by the
//!   schedule shrinker on mutated decision lists).
//!
//! Any policy can additionally *record* its decisions into a
//! [`Schedule`] (`RunConfig::record_sched`), making every run — chaotic
//! or not — a replayable artifact.

use crate::interp::RunError;
use crate::rng::SmallRng;
use crate::stats::{RunConfig, SchedPolicy};
use drms_trace::sched::{PreemptCause, SchedDecision, Schedule};
use drms_trace::ThreadId;
use std::sync::Arc;

/// Classification of one interpreter step, as seen by the scheduler.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum StepKind {
    /// An ordinary instruction (or a step that ends the slice anyway).
    Plain,
    /// Control entered a basic block — the unit block-quanta count.
    Block,
    /// A synchronization operation completed without blocking — a chaos
    /// preemption point.
    Sync,
    /// A kernel transfer (syscall) executed — a chaos preemption point.
    Kernel,
}

/// Probability (1/CHAOS_PREEMPT_DEN) that chaos preempts at a sync
/// point or kernel transfer.
const CHAOS_PREEMPT_NUM: u32 = 1;
const CHAOS_PREEMPT_DEN: u32 = 4;

/// Histogram bucket bounds for slice lengths in interpreter steps
/// (`sched.slice.steps` in the metrics registry).
pub(crate) const SLICE_STEP_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Observability tallies of one run's scheduling decisions. Plain
/// integer bumps on the slice-close path; folded into the metrics
/// registry by [`Vm::metrics`](crate::Vm::metrics), where the audit
/// checks `Σ sched.preempt.* == sched.slices`.
#[derive(Clone, Debug, Default)]
pub(crate) struct SliceCounters {
    /// Total closed slices (aborted ones included).
    pub slices: u64,
    /// Per-cause tallies, indexed by [`PreemptCause::index`].
    pub by_cause: [u64; 7],
    /// Slice lengths in steps, bucketed by [`SLICE_STEP_BOUNDS`]
    /// (`counts[i]` covers values `<= SLICE_STEP_BOUNDS[i]`, the last
    /// slot is the overflow bucket), plus the running sum for the
    /// histogram's `_sum` series.
    pub step_buckets: [u64; 9],
    pub step_sum: u64,
}

pub(crate) struct Scheduler {
    policy: SchedPolicy,
    quantum: u32,
    last: usize,
    rng: SmallRng,
    replay: Option<Arc<Schedule>>,
    /// Index of the next replay decision to consume.
    cursor: usize,
    /// Set once a relaxed replay has exhausted (or skipped past) all
    /// recorded decisions: remaining threads run non-preemptively.
    replay_exhausted: bool,
    record: Option<Schedule>,
    // --- current slice ---
    in_slice: bool,
    cur_thread: usize,
    cur_steps: u32,
    /// Remaining block budget of the slice (block-quantum policies).
    blocks_left: u32,
    /// The recorded decision driving the current slice (replay).
    replay_decision: Option<SchedDecision>,
    counters: SliceCounters,
}

impl Scheduler {
    /// Builds the scheduler for `config`.
    ///
    /// # Errors
    /// [`RunError::ScheduleMissing`] if the policy is
    /// [`SchedPolicy::Replay`] but `config.replay` holds no schedule.
    pub(crate) fn new(config: &RunConfig) -> Result<Self, RunError> {
        let seed = match config.policy {
            SchedPolicy::Random { seed } | SchedPolicy::Chaos { seed } => seed,
            SchedPolicy::RoundRobin | SchedPolicy::Replay { .. } => 0,
        };
        let replay = match config.policy {
            SchedPolicy::Replay { .. } => {
                Some(config.replay.clone().ok_or(RunError::ScheduleMissing)?)
            }
            _ => config.replay.clone(),
        };
        Ok(Scheduler {
            policy: config.policy,
            quantum: config.quantum.max(1),
            last: 0,
            rng: SmallRng::seed_from_u64(seed),
            replay,
            cursor: 0,
            replay_exhausted: false,
            record: config.record_sched.then(|| Schedule::new(config.quantum)),
            in_slice: false,
            cur_thread: 0,
            cur_steps: 0,
            blocks_left: 0,
            replay_decision: None,
            counters: SliceCounters::default(),
        })
    }

    /// Picks the thread for the next slice, given per-thread runnable
    /// flags. Returns `None` when no thread is runnable (the caller
    /// decides between completion and deadlock).
    ///
    /// # Errors
    /// [`RunError::ScheduleDiverged`] in strict replay when the
    /// recorded decision cannot be honored.
    pub(crate) fn pick(&mut self, runnable: &[bool]) -> Result<Option<usize>, RunError> {
        if !runnable.iter().any(|&r| r) {
            return Ok(None);
        }
        let n = runnable.len();
        match self.policy {
            SchedPolicy::RoundRobin => Ok(self.round_robin(runnable)),
            SchedPolicy::Random { .. } | SchedPolicy::Chaos { .. } => {
                let pool: Vec<usize> = (0..n).filter(|&i| runnable[i]).collect();
                Ok(Some(pool[self.rng.gen_range(0..pool.len())]))
            }
            SchedPolicy::Replay { relaxed } => self.pick_replay(runnable, relaxed),
        }
    }

    fn round_robin(&self, runnable: &[bool]) -> Option<usize> {
        let n = runnable.len();
        (1..=n).map(|d| (self.last + d) % n).find(|&i| runnable[i])
    }

    fn pick_replay(&mut self, runnable: &[bool], relaxed: bool) -> Result<Option<usize>, RunError> {
        let schedule = self
            .replay
            .clone()
            .expect("replay policy validated at construction");
        loop {
            let Some(d) = schedule.decisions.get(self.cursor).copied() else {
                // Decisions exhausted while threads are still runnable.
                if relaxed {
                    self.replay_exhausted = true;
                    self.replay_decision = None;
                    return Ok(self.round_robin(runnable));
                }
                return Err(RunError::ScheduleDiverged {
                    slice: self.cursor,
                    reason: "schedule exhausted with runnable threads remaining".into(),
                });
            };
            let idx = d.thread.index() as usize;
            if idx < runnable.len() && runnable[idx] {
                self.cursor += 1;
                self.replay_decision = Some(d);
                return Ok(Some(idx));
            }
            if relaxed {
                // The mutated schedule names a thread that cannot run
                // here; skip the decision and try the next one.
                self.cursor += 1;
                continue;
            }
            return Err(RunError::ScheduleDiverged {
                slice: self.cursor,
                reason: format!("recorded thread {} is not runnable", d.thread),
            });
        }
    }

    /// Opens a slice for thread `t`, fixing its budget.
    pub(crate) fn begin_slice(&mut self, t: usize) {
        self.last = t;
        self.cur_thread = t;
        self.cur_steps = 0;
        self.in_slice = true;
        self.blocks_left = match self.policy {
            SchedPolicy::RoundRobin | SchedPolicy::Random { .. } => self.quantum,
            SchedPolicy::Chaos { .. } => 1 + self.rng.gen_range(0..self.quantum),
            // Replay slices are step-driven (or unbounded in the
            // relaxed fallback after exhaustion).
            SchedPolicy::Replay { .. } => u32::MAX,
        };
    }

    /// Accounts one interpreter step of the current slice and decides
    /// whether the scheduler must preempt after it. Natural slice ends
    /// (block, yield, exit) take precedence in the interpreter loop.
    pub(crate) fn note_step(&mut self, kind: StepKind) -> Option<PreemptCause> {
        self.cur_steps += 1;
        match self.policy {
            SchedPolicy::Replay { relaxed } => {
                let d = self.replay_decision?;
                if self.cur_steps < d.steps {
                    return None;
                }
                // Honor the recorded slice length. A forced cause
                // replays as itself. A recorded abort is re-raised by
                // the guest itself (watchdog or error) before the next
                // step, so strict replay keeps the slice open; relaxed
                // replay bounds it in case the failure no longer
                // occurs. A natural cause should coincide with a
                // natural stop — if it does not, preempt as a quantum
                // expiry and let strict verification flag the
                // divergence.
                match d.cause {
                    c if c.is_forced() => Some(c),
                    PreemptCause::Abort if !relaxed => None,
                    _ => Some(PreemptCause::Quantum),
                }
            }
            SchedPolicy::Chaos { .. } => match kind {
                StepKind::Block => {
                    self.blocks_left -= 1;
                    (self.blocks_left == 0).then_some(PreemptCause::Quantum)
                }
                StepKind::Sync => self
                    .rng
                    .gen_ratio(CHAOS_PREEMPT_NUM, CHAOS_PREEMPT_DEN)
                    .then_some(PreemptCause::Sync),
                StepKind::Kernel => self
                    .rng
                    .gen_ratio(CHAOS_PREEMPT_NUM, CHAOS_PREEMPT_DEN)
                    .then_some(PreemptCause::Kernel),
                StepKind::Plain => None,
            },
            SchedPolicy::RoundRobin | SchedPolicy::Random { .. } => match kind {
                StepKind::Block => {
                    self.blocks_left -= 1;
                    (self.blocks_left == 0).then_some(PreemptCause::Quantum)
                }
                _ => None,
            },
        }
    }

    /// Accounts `n` plain steps at once — the decoded dispatch loop's
    /// bulk equivalent of `n` calls to
    /// [`note_step`](Self::note_step)`(StepKind::Plain)`.
    ///
    /// Sound because a plain step can never preempt on its own: under
    /// the block-quantum policies only [`StepKind::Block`] decrements
    /// the budget, chaos preempts only at sync/kernel points, and the
    /// decoded loop never runs while a replay decision is active
    /// (replay runs always use the reference stepper). Slice step
    /// totals — recorded schedules and the `sched.slice.steps`
    /// histogram — come out identical to per-step accounting.
    pub(crate) fn note_plain_steps(&mut self, n: u32) {
        debug_assert!(
            self.replay_decision.is_none(),
            "decoded dispatch never drives a replayed slice"
        );
        self.cur_steps += n;
    }

    /// Remaining block budget of the current slice: how many more
    /// [`StepKind::Block`] steps may run before a quantum preemption.
    /// At least 1 while a slice is open.
    pub(crate) fn blocks_remaining(&self) -> u32 {
        self.blocks_left
    }

    /// Accounts `n` block steps at once — the decoded dispatch loop's
    /// bulk equivalent of `n` calls to
    /// [`note_step`](Self::note_step)`(StepKind::Block)`, valid only
    /// for `n <` [`blocks_remaining`](Self::blocks_remaining) (the
    /// caller keeps the slice's *final* block step on the per-step
    /// path, so a quantum expiry is always decided by `note_step`).
    /// Chaos randomness is unaffected: its RNG draws happen only at
    /// sync/kernel steps and slice starts, never per block.
    pub(crate) fn note_block_steps(&mut self, n: u32) {
        debug_assert!(
            self.replay_decision.is_none(),
            "decoded dispatch never drives a replayed slice"
        );
        debug_assert!(n < self.blocks_left, "bulk blocks may not end the slice");
        self.cur_steps += n;
        self.blocks_left -= n;
    }

    /// Closes the current slice with `cause`, recording it if recording
    /// is on.
    ///
    /// # Errors
    /// [`RunError::ScheduleDiverged`] in strict replay when the
    /// observed slice does not match the recorded one.
    pub(crate) fn end_slice(&mut self, cause: PreemptCause) -> Result<(), RunError> {
        self.in_slice = false;
        if let Some(d) = self.replay_decision.take() {
            if let SchedPolicy::Replay { relaxed: false } = self.policy {
                if cause != d.cause || self.cur_steps != d.steps {
                    return Err(RunError::ScheduleDiverged {
                        slice: self.cursor - 1,
                        reason: format!(
                            "recorded {} steps ending with {}, observed {} steps ending with {}",
                            d.steps, d.cause, self.cur_steps, cause
                        ),
                    });
                }
            }
        }
        self.push_decision(cause);
        Ok(())
    }

    /// Flushes an in-progress slice after a mid-slice abort (watchdog
    /// or guest error), so a recorded failing run replays to the same
    /// failure point.
    pub(crate) fn abort_slice(&mut self) {
        if self.in_slice {
            self.in_slice = false;
            self.replay_decision = None;
            self.push_decision(PreemptCause::Abort);
        }
    }

    fn push_decision(&mut self, cause: PreemptCause) {
        let (thread, steps) = (self.cur_thread, self.cur_steps);
        self.counters.slices += 1;
        self.counters.by_cause[cause.index()] += 1;
        let bucket = SLICE_STEP_BOUNDS
            .iter()
            .position(|&b| u64::from(steps) <= b)
            .unwrap_or(SLICE_STEP_BOUNDS.len());
        self.counters.step_buckets[bucket] += 1;
        self.counters.step_sum += u64::from(steps);
        if let Some(rec) = &mut self.record {
            rec.push(SchedDecision {
                thread: ThreadId::new(thread as u32),
                steps,
                cause,
            });
        }
    }

    /// The observability tallies accumulated so far.
    pub(crate) fn counters(&self) -> &SliceCounters {
        &self.counters
    }

    /// The schedule recorded so far, if recording was requested.
    pub(crate) fn recorded(&self) -> Option<&Schedule> {
        self.record.as_ref()
    }

    /// Takes ownership of the recorded schedule.
    pub(crate) fn take_recorded(&mut self) -> Option<Schedule> {
        self.record.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(policy: SchedPolicy) -> RunConfig {
        RunConfig {
            policy,
            quantum: 4,
            record_sched: true,
            ..RunConfig::default()
        }
    }

    #[test]
    fn replay_policy_without_schedule_is_rejected() {
        let cfg = RunConfig {
            policy: SchedPolicy::Replay { relaxed: false },
            ..RunConfig::default()
        };
        assert_eq!(Scheduler::new(&cfg).err(), Some(RunError::ScheduleMissing));
    }

    #[test]
    fn round_robin_rotates_from_last() {
        let mut s = Scheduler::new(&config(SchedPolicy::RoundRobin)).unwrap();
        let runnable = vec![true, true, true];
        let a = s.pick(&runnable).unwrap().unwrap();
        s.begin_slice(a);
        assert_eq!(a, 1, "starts after thread 0");
        let b = s.pick(&runnable).unwrap().unwrap();
        s.begin_slice(b);
        assert_eq!(b, 2);
        let c = s.pick(&runnable).unwrap().unwrap();
        assert_eq!(c, 0);
    }

    #[test]
    fn pick_returns_none_when_nothing_runnable() {
        let mut s = Scheduler::new(&config(SchedPolicy::RoundRobin)).unwrap();
        assert_eq!(s.pick(&[false, false]).unwrap(), None);
        assert_eq!(s.pick(&[]).unwrap(), None);
    }

    #[test]
    fn block_quantum_preempts_after_budget() {
        let mut s = Scheduler::new(&config(SchedPolicy::RoundRobin)).unwrap();
        s.begin_slice(0);
        for _ in 0..3 {
            assert_eq!(s.note_step(StepKind::Block), None);
        }
        assert_eq!(s.note_step(StepKind::Block), Some(PreemptCause::Quantum));
    }

    #[test]
    fn recording_captures_decisions_in_order() {
        let mut s = Scheduler::new(&config(SchedPolicy::RoundRobin)).unwrap();
        s.begin_slice(0);
        s.note_step(StepKind::Plain);
        s.note_step(StepKind::Plain);
        s.end_slice(PreemptCause::Block).unwrap();
        s.begin_slice(1);
        s.note_step(StepKind::Plain);
        s.end_slice(PreemptCause::Exit).unwrap();
        let rec = s.take_recorded().unwrap();
        assert_eq!(rec.decisions.len(), 2);
        assert_eq!(rec.decisions[0].steps, 2);
        assert_eq!(rec.decisions[0].cause, PreemptCause::Block);
        assert_eq!(rec.decisions[1].thread, ThreadId::new(1));
    }

    #[test]
    fn abort_flushes_open_slice_only() {
        let mut s = Scheduler::new(&config(SchedPolicy::RoundRobin)).unwrap();
        s.begin_slice(0);
        s.note_step(StepKind::Plain);
        s.abort_slice();
        s.abort_slice(); // closed: second flush is a no-op
        let rec = s.recorded().unwrap();
        assert_eq!(rec.decisions.len(), 1);
        assert_eq!(rec.decisions[0].cause, PreemptCause::Abort);
    }

    fn replay_config(decisions: Vec<SchedDecision>, relaxed: bool) -> RunConfig {
        RunConfig {
            policy: SchedPolicy::Replay { relaxed },
            replay: Some(Arc::new(Schedule {
                quantum: 4,
                decisions,
            })),
            ..RunConfig::default()
        }
    }

    #[test]
    fn strict_replay_follows_decisions_and_verifies_causes() {
        let decisions = vec![
            SchedDecision {
                thread: ThreadId::new(0),
                steps: 2,
                cause: PreemptCause::Quantum,
            },
            SchedDecision {
                thread: ThreadId::new(1),
                steps: 1,
                cause: PreemptCause::Exit,
            },
        ];
        let mut s = Scheduler::new(&replay_config(decisions, false)).unwrap();
        let t = s.pick(&[true, true]).unwrap().unwrap();
        assert_eq!(t, 0);
        s.begin_slice(t);
        assert_eq!(s.note_step(StepKind::Plain), None);
        assert_eq!(s.note_step(StepKind::Plain), Some(PreemptCause::Quantum));
        s.end_slice(PreemptCause::Quantum).unwrap();
        let t = s.pick(&[true, true]).unwrap().unwrap();
        assert_eq!(t, 1);
        s.begin_slice(t);
        s.note_step(StepKind::Plain);
        s.end_slice(PreemptCause::Exit).unwrap();
    }

    #[test]
    fn strict_replay_flags_cause_divergence() {
        let decisions = vec![SchedDecision {
            thread: ThreadId::new(0),
            steps: 3,
            cause: PreemptCause::Block,
        }];
        let mut s = Scheduler::new(&replay_config(decisions, false)).unwrap();
        let t = s.pick(&[true]).unwrap().unwrap();
        s.begin_slice(t);
        s.note_step(StepKind::Plain);
        // The thread blocks a step early — divergence.
        let e = s.end_slice(PreemptCause::Block).unwrap_err();
        assert!(
            matches!(e, RunError::ScheduleDiverged { slice: 0, .. }),
            "{e:?}"
        );
    }

    #[test]
    fn strict_replay_flags_unrunnable_thread() {
        let decisions = vec![SchedDecision {
            thread: ThreadId::new(1),
            steps: 1,
            cause: PreemptCause::Exit,
        }];
        let mut s = Scheduler::new(&replay_config(decisions, false)).unwrap();
        let e = s.pick(&[true, false]).unwrap_err();
        assert!(matches!(e, RunError::ScheduleDiverged { .. }), "{e:?}");
    }

    #[test]
    fn relaxed_replay_skips_unrunnable_and_falls_back_to_round_robin() {
        let decisions = vec![
            SchedDecision {
                thread: ThreadId::new(1),
                steps: 5,
                cause: PreemptCause::Quantum,
            },
            SchedDecision {
                thread: ThreadId::new(0),
                steps: 2,
                cause: PreemptCause::Quantum,
            },
        ];
        let mut s = Scheduler::new(&replay_config(decisions, true)).unwrap();
        // Thread 1 is not runnable: the decision is skipped, thread 0's
        // decision applies.
        let t = s.pick(&[true, false]).unwrap().unwrap();
        assert_eq!(t, 0);
        s.begin_slice(t);
        s.note_step(StepKind::Plain);
        assert_eq!(s.note_step(StepKind::Plain), Some(PreemptCause::Quantum));
        s.end_slice(PreemptCause::Quantum).unwrap();
        // Decisions exhausted: non-preemptive round-robin fallback.
        let t = s.pick(&[true, true]).unwrap().unwrap();
        s.begin_slice(t);
        for _ in 0..1000 {
            assert_eq!(
                s.note_step(StepKind::Block),
                None,
                "fallback never preempts"
            );
        }
    }

    #[test]
    fn chaos_policy_draws_bounded_quanta_and_sometimes_preempts_at_sync() {
        let mut s = Scheduler::new(&config(SchedPolicy::Chaos { seed: 7 })).unwrap();
        let mut sync_preempts = 0;
        let mut quantum_preempts = 0;
        for round in 0..200 {
            let t = s.pick(&[true, true]).unwrap().unwrap();
            assert!(t < 2);
            s.begin_slice(t);
            assert!((1..=4).contains(&s.blocks_left), "quantum in [1, quantum]");
            loop {
                match s.note_step(if round % 2 == 0 {
                    StepKind::Sync
                } else {
                    StepKind::Block
                }) {
                    Some(PreemptCause::Sync) => {
                        sync_preempts += 1;
                        break;
                    }
                    Some(PreemptCause::Quantum) => {
                        quantum_preempts += 1;
                        break;
                    }
                    Some(other) => panic!("unexpected cause {other:?}"),
                    None => {}
                }
                if s.cur_steps > 64 {
                    s.end_slice(PreemptCause::Yield).unwrap();
                    break;
                }
            }
            if s.in_slice {
                s.end_slice(PreemptCause::Quantum).unwrap();
            }
        }
        assert!(sync_preempts > 0, "sync preemptions occur");
        assert!(quantum_preempts > 0, "quantum preemptions occur");
    }

    #[test]
    fn slice_counters_cover_every_closed_slice() {
        let mut s = Scheduler::new(&config(SchedPolicy::RoundRobin)).unwrap();
        s.begin_slice(0);
        s.note_step(StepKind::Plain);
        s.note_step(StepKind::Plain);
        s.note_step(StepKind::Plain);
        s.end_slice(PreemptCause::Block).unwrap();
        s.begin_slice(1);
        s.note_step(StepKind::Plain);
        s.end_slice(PreemptCause::Exit).unwrap();
        s.begin_slice(0);
        s.note_step(StepKind::Plain);
        s.abort_slice();
        let c = s.counters();
        assert_eq!(c.slices, 3);
        assert_eq!(c.by_cause.iter().sum::<u64>(), c.slices);
        assert_eq!(c.by_cause[PreemptCause::Block.index()], 1);
        assert_eq!(c.by_cause[PreemptCause::Exit.index()], 1);
        assert_eq!(c.by_cause[PreemptCause::Abort.index()], 1);
        assert_eq!(c.step_buckets.iter().sum::<u64>(), c.slices);
        assert_eq!(c.step_sum, 5);
        // Steps 3 lands in the `<= 4` bucket, 1 in `<= 1`, 1 in `<= 1`.
        assert_eq!(c.step_buckets[0], 2);
        assert_eq!(c.step_buckets[2], 1);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = Scheduler::new(&config(SchedPolicy::Chaos { seed })).unwrap();
            let mut picks = Vec::new();
            for _ in 0..100 {
                let t = s.pick(&[true, true, true]).unwrap().unwrap();
                s.begin_slice(t);
                picks.push((t, s.blocks_left));
                s.end_slice(PreemptCause::Yield).unwrap();
            }
            picks
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
