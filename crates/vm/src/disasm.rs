//! Human-readable disassembly of guest programs.
//!
//! [`disassemble`] renders a whole [`Program`] (or single routines via
//! [`routine_listing`]) in an assembly-like textual form, which is
//! invaluable when debugging workload generators:
//!
//! ```text
//! routine @1 consume_data(0 params, 3 regs):
//!   bb0:
//!     r1 = load [r0 + 0]
//!     r2 = add r1, 1
//!     ret
//! ```

use crate::ir::{BinOp, Inst, Program, Routine, Terminator};
use crate::kernel::Syscall;
use drms_trace::RoutineId;
use std::fmt::Write as _;

fn binop_mnemonic(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::Eq => "cmpeq",
        BinOp::Ne => "cmpne",
        BinOp::Lt => "cmplt",
        BinOp::Le => "cmple",
        BinOp::Gt => "cmpgt",
        BinOp::Ge => "cmpge",
        BinOp::Min => "min",
        BinOp::Max => "max",
    }
}

fn write_syscall(out: &mut String, call: &Syscall, dst: Option<u16>) {
    if let Some(d) = dst {
        let _ = write!(out, "r{d} = ");
    }
    let _ = write!(
        out,
        "syscall {}(fd={}, buf={}, len={}",
        call.no, call.fd, call.buf, call.len
    );
    if call.no.is_positioned() {
        let _ = write!(out, ", off={}", call.offset);
    }
    out.push(')');
}

fn write_inst(out: &mut String, inst: &Inst, program: &Program) {
    match inst {
        Inst::Mov { dst, src } => {
            let _ = write!(out, "r{dst} = {src}");
        }
        Inst::Bin { op, dst, lhs, rhs } => {
            let _ = write!(out, "r{dst} = {} {lhs}, {rhs}", binop_mnemonic(*op));
        }
        Inst::Load { dst, base, offset } => {
            let _ = write!(out, "r{dst} = load [{base} + {offset}]");
        }
        Inst::Store { base, offset, src } => {
            let _ = write!(out, "store [{base} + {offset}], {src}");
        }
        Inst::Alloc { dst, cells } => {
            let _ = write!(out, "r{dst} = alloc {cells}");
        }
        Inst::Call { routine, args, dst } => {
            if let Some(d) = dst {
                let _ = write!(out, "r{d} = ");
            }
            let _ = write!(
                out,
                "call @{} {}(",
                routine.index(),
                program.routine_name(*routine)
            );
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{a}");
            }
            out.push(')');
        }
        Inst::Spawn { routine, args, dst } => {
            let _ = write!(
                out,
                "r{dst} = spawn @{} {}(",
                routine.index(),
                program.routine_name(*routine)
            );
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{a}");
            }
            out.push(')');
        }
        Inst::Join { thread } => {
            let _ = write!(out, "join {thread}");
        }
        Inst::SemWait { sem } => {
            let _ = write!(out, "sem_wait s{sem}");
        }
        Inst::SemSignal { sem } => {
            let _ = write!(out, "sem_signal s{sem}");
        }
        Inst::MutexLock { mutex } => {
            let _ = write!(out, "lock m{mutex}");
        }
        Inst::MutexUnlock { mutex } => {
            let _ = write!(out, "unlock m{mutex}");
        }
        Inst::CondWait { cond, mutex } => {
            let _ = write!(out, "cond_wait c{cond}, m{mutex}");
        }
        Inst::CondSignal { cond } => {
            let _ = write!(out, "cond_signal c{cond}");
        }
        Inst::CondBroadcast { cond } => {
            let _ = write!(out, "cond_broadcast c{cond}");
        }
        Inst::Syscall { call, dst } => write_syscall(out, call, *dst),
        Inst::Rand { dst, bound } => {
            let _ = write!(out, "r{dst} = rand {bound}");
        }
        Inst::Yield => out.push_str("yield"),
    }
}

fn write_terminator(out: &mut String, term: &Terminator) {
    match term {
        Terminator::Jump(b) => {
            let _ = write!(out, "jmp {b}");
        }
        Terminator::Branch {
            cond,
            then_block,
            else_block,
        } => {
            let _ = write!(out, "br {cond} ? {then_block} : {else_block}");
        }
        Terminator::Ret(Some(v)) => {
            let _ = write!(out, "ret {v}");
        }
        Terminator::Ret(None) => out.push_str("ret"),
    }
}

/// Renders one routine as an indented listing.
pub fn routine_listing(program: &Program, id: RoutineId) -> String {
    let routine: &Routine = program.routine(id);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "routine @{} {}({} params, {} regs):",
        id.index(),
        routine.name,
        routine.params,
        routine.regs
    );
    for (bi, block) in routine.blocks.iter().enumerate() {
        let entry = if bi == routine.entry.index() as usize {
            "  bb{bi}:  ; entry".replace("{bi}", &bi.to_string())
        } else {
            format!("  bb{bi}:")
        };
        let _ = writeln!(out, "{entry}");
        for inst in &block.insts {
            out.push_str("    ");
            write_inst(&mut out, inst, program);
            out.push('\n');
        }
        out.push_str("    ");
        write_terminator(&mut out, &block.term);
        out.push('\n');
    }
    out
}

/// Renders the whole program, routine by routine, with a header listing
/// synchronization objects and globals.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; program: {} routines, main = @{} {}",
        program.routines().len(),
        program.main().index(),
        program.routine_name(program.main())
    );
    if !program.semaphores().is_empty() {
        let vals: Vec<String> = program
            .semaphores()
            .iter()
            .enumerate()
            .map(|(i, v)| format!("s{i}={v}"))
            .collect();
        let _ = writeln!(out, "; semaphores: {}", vals.join(" "));
    }
    if program.mutex_count() > 0 {
        let _ = writeln!(out, "; mutexes: {}", program.mutex_count());
    }
    if program.cond_count() > 0 {
        let _ = writeln!(out, "; condvars: {}", program.cond_count());
    }
    for (base, data) in program.globals() {
        let _ = writeln!(out, "; global @{base}: {} cells", data.len().max(1));
    }
    out.push('\n');
    for i in 0..program.routines().len() {
        out.push_str(&routine_listing(program, RoutineId::new(i as u32)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::Operand;
    use crate::kernel::SyscallNo;

    fn sample_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(4);
        let sem = pb.semaphore(1);
        let m = pb.mutex();
        let cv = pb.condvar();
        let helper = pb.function("helper", 1, |f| {
            let x = f.param(0);
            let doubled = f.add(x, x);
            f.ret_val(doubled);
        });
        let main = pb.function("main", 0, |f| {
            let v = f.call(helper, &[Operand::Imm(21)]);
            f.store(g.raw() as i64, 0, v);
            f.sem_wait(sem);
            f.lock(m);
            f.cond_signal(cv);
            f.unlock(m);
            f.sem_signal(sem);
            let buf = f.alloc(4);
            let _ = f.syscall(SyscallNo::Pread64, 0, buf, 4, 8);
            let r = f.rand(10);
            let c = f.lt(r, 5);
            f.if_then(c, |f| f.yield_now());
            let t = f.spawn(helper, &[Operand::Imm(1)]);
            f.join(t);
            f.ret(None);
        });
        pb.finish(main).unwrap()
    }

    #[test]
    fn listing_contains_all_constructs() {
        let p = sample_program();
        let text = disassemble(&p);
        for needle in [
            "routine @0 helper(1 params",
            "routine @1 main",
            "; entry",
            "call @0 helper(21)",
            "store [",
            "sem_wait s0",
            "lock m0",
            "cond_signal c0",
            "unlock m0",
            "sem_signal s0",
            "syscall pread64(fd=0",
            "off=8",
            "= rand 10",
            "br ",
            "yield",
            "spawn @0 helper(1)",
            "join ",
            "ret r",
            "; semaphores: s0=1",
            "; mutexes: 1",
            "; condvars: 1",
            "; global @0x100: 4 cells",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn every_binop_has_a_distinct_mnemonic() {
        let ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Min,
            BinOp::Max,
        ];
        let mut seen = std::collections::HashSet::new();
        for op in ops {
            assert!(seen.insert(binop_mnemonic(op)), "duplicate {op:?}");
        }
    }

    #[test]
    fn single_routine_listing_is_a_subset() {
        let p = sample_program();
        let one = routine_listing(&p, RoutineId::new(0));
        assert!(disassemble(&p).contains(&one));
    }

    #[test]
    fn listings_of_workload_programs_do_not_panic() {
        // Smoke coverage over richer instruction mixes.
        let p = sample_program();
        for i in 0..p.routines().len() {
            let _ = routine_listing(&p, RoutineId::new(i as u32));
        }
    }
}
