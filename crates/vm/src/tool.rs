//! The instrumentation-tool interface.
//!
//! A [`Tool`] is the analogue of a Valgrind tool plugin: it consumes the
//! instrumentation event stream (the [`EventSink`] callbacks) and reports
//! how much shadow state it allocated, which backs the paper's space
//! overhead measurements.

use crate::batch::{BatchKind, EventBatch};
use drms_trace::{EventSink, Metrics};

/// A dynamic-analysis tool attached to a guest execution.
///
/// Implementors receive every instrumentation event through their
/// [`EventSink`] methods. [`Tool::shadow_bytes`] reports host bytes spent
/// on analysis metadata (shadow memories, shadow stacks, profile tables)
/// and is sampled after the run for space-overhead accounting.
pub trait Tool: EventSink {
    /// Short tool name used in reports (e.g. `"aprof-drms"`).
    fn name(&self) -> &str;

    /// Host bytes currently allocated for analysis metadata.
    fn shadow_bytes(&self) -> u64 {
        0
    }

    /// Folds this tool's observability data into the run's metrics
    /// registry. Called once after the run, never on the hot path.
    ///
    /// The default contribution is a `tool.<name>.shadow_bytes` gauge;
    /// tools with richer internal state (shadow-memory caches, profile
    /// tables) override this to add their own deterministic counters.
    fn observe_metrics(&self, metrics: &mut Metrics) {
        metrics.set_gauge(
            format!("tool.{}.shadow_bytes", self.name()),
            self.shadow_bytes(),
        );
    }

    /// Delivers a batch of buffered read/write events, in emission order.
    ///
    /// The decoded dispatch loop calls this instead of per-event
    /// [`EventSink::on_read`]/[`EventSink::on_write`] when
    /// [`RunConfig::event_batch`](crate::RunConfig::event_batch) > 1. The
    /// default implementation replays the batch through those per-event
    /// hooks, so existing tools observe an identical stream; tools with a
    /// native batch path (the drms profiler, memcheck) override this to
    /// amortize per-delivery setup over the whole batch.
    ///
    /// Every entry belongs to [`EventBatch::thread`]; the VM flushes
    /// before any other event kind, so overriding implementations may
    /// assume no call/return/sync/kernel event interleaves a batch.
    fn observe_batch(&mut self, batch: &EventBatch) {
        let thread = batch.thread();
        for (kind, addr, len) in batch.entries() {
            match kind {
                BatchKind::Read => self.on_read(thread, addr, len),
                BatchKind::Write => self.on_write(thread, addr, len),
            }
        }
    }
}

/// The `nulgrind` analogue: subscribes to the event stream and does
/// nothing, measuring the bare instrumentation-dispatch overhead.
///
/// # Example
/// ```
/// use drms_vm::{NullTool, Tool};
/// let t = NullTool::default();
/// assert_eq!(t.name(), "nulgrind");
/// assert_eq!(t.shadow_bytes(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct NullTool;

impl EventSink for NullTool {}

impl Tool for NullTool {
    fn name(&self) -> &str {
        "nulgrind"
    }
}

/// Fans one event stream out to several tools, in order.
///
/// Useful for recording a trace while profiling, or for comparing two
/// analyses over one identical execution.
#[derive(Default)]
pub struct MultiTool<'a> {
    tools: Vec<&'a mut dyn Tool>,
}

impl<'a> MultiTool<'a> {
    /// Creates an empty fan-out.
    pub fn new() -> Self {
        MultiTool { tools: Vec::new() }
    }

    /// Adds a tool; events are delivered in insertion order.
    pub fn push(&mut self, tool: &'a mut dyn Tool) -> &mut Self {
        self.tools.push(tool);
        self
    }

    /// Number of attached tools.
    pub fn len(&self) -> usize {
        self.tools.len()
    }

    /// Whether no tools are attached.
    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }
}

impl std::fmt::Debug for MultiTool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiTool")
            .field(
                "tools",
                &self
                    .tools
                    .iter()
                    .map(|t| t.name().to_owned())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

macro_rules! fan_out {
    ($($method:ident ( $($arg:ident : $ty:ty),* );)*) => {
        impl EventSink for MultiTool<'_> {
            $(fn $method(&mut self, $($arg: $ty),*) {
                for t in self.tools.iter_mut() {
                    t.$method($($arg),*);
                }
            })*
        }
    };
}

fan_out! {
    on_thread_start(thread: drms_trace::ThreadId, parent: Option<drms_trace::ThreadId>);
    on_thread_exit(thread: drms_trace::ThreadId, cost: u64);
    on_thread_switch(from: Option<drms_trace::ThreadId>, to: drms_trace::ThreadId);
    on_call(thread: drms_trace::ThreadId, routine: drms_trace::RoutineId, cost: u64);
    on_return(thread: drms_trace::ThreadId, routine: drms_trace::RoutineId, cost: u64);
    on_read(thread: drms_trace::ThreadId, addr: drms_trace::Addr, len: u32);
    on_write(thread: drms_trace::ThreadId, addr: drms_trace::Addr, len: u32);
    on_user_to_kernel(thread: drms_trace::ThreadId, addr: drms_trace::Addr, len: u32);
    on_kernel_to_user(thread: drms_trace::ThreadId, addr: drms_trace::Addr, len: u32);
    on_sync(thread: drms_trace::ThreadId, op: drms_trace::SyncOp);
    on_block(thread: drms_trace::ThreadId, routine: drms_trace::RoutineId, block: drms_trace::BlockId);
    on_finish();
}

impl Tool for MultiTool<'_> {
    fn name(&self) -> &str {
        "multi"
    }

    fn shadow_bytes(&self) -> u64 {
        self.tools.iter().map(|t| t.shadow_bytes()).sum()
    }

    /// Fans out: each attached tool reports under its own name; the
    /// fan itself contributes nothing.
    fn observe_metrics(&self, metrics: &mut Metrics) {
        for t in &self.tools {
            t.observe_metrics(metrics);
        }
    }

    /// Fans the batch out so each tool takes its own (native or
    /// replayed) batch path.
    fn observe_batch(&mut self, batch: &EventBatch) {
        for t in self.tools.iter_mut() {
            t.observe_batch(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_trace::{RoutineId, ThreadId};

    #[derive(Default)]
    struct Counter {
        calls: u64,
        finished: bool,
    }
    impl EventSink for Counter {
        fn on_call(&mut self, _: ThreadId, _: RoutineId, _: u64) {
            self.calls += 1;
        }
        fn on_finish(&mut self) {
            self.finished = true;
        }
    }
    impl Tool for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn shadow_bytes(&self) -> u64 {
            16
        }
    }

    #[test]
    fn multi_tool_fans_out_in_order() {
        let mut a = Counter::default();
        let mut b = Counter::default();
        {
            let mut m = MultiTool::new();
            m.push(&mut a).push(&mut b);
            assert_eq!(m.len(), 2);
            assert!(!m.is_empty());
            m.on_call(ThreadId::MAIN, RoutineId::new(0), 0);
            m.on_finish();
            assert_eq!(m.shadow_bytes(), 32);
            assert!(format!("{m:?}").contains("counter"));
            let mut metrics = Metrics::new();
            m.observe_metrics(&mut metrics);
            assert_eq!(metrics.gauge("tool.counter.shadow_bytes"), 16);
        }
        assert_eq!(a.calls, 1);
        assert_eq!(b.calls, 1);
        assert!(a.finished && b.finished);
    }

    #[test]
    fn default_observe_batch_replays_per_event() {
        use drms_trace::Addr;

        #[derive(Default)]
        struct Log(Vec<(bool, u64, u32)>);
        impl EventSink for Log {
            fn on_read(&mut self, _: ThreadId, addr: Addr, len: u32) {
                self.0.push((false, addr.raw(), len));
            }
            fn on_write(&mut self, _: ThreadId, addr: Addr, len: u32) {
                self.0.push((true, addr.raw(), len));
            }
        }
        impl Tool for Log {
            fn name(&self) -> &str {
                "log"
            }
        }

        let mut batch = EventBatch::with_capacity(4);
        batch.set_thread(ThreadId::MAIN);
        batch.push(BatchKind::Read, Addr::new(8), 1);
        batch.push(BatchKind::Write, Addr::new(16), 2);
        batch.push(BatchKind::Read, Addr::new(8), 1);

        let mut direct = Log::default();
        direct.observe_batch(&batch);
        assert_eq!(direct.0, vec![(false, 8, 1), (true, 16, 2), (false, 8, 1)]);

        // MultiTool forwards the batch to each member.
        let mut a = Log::default();
        let mut b = Log::default();
        let mut m = MultiTool::new();
        m.push(&mut a).push(&mut b);
        m.observe_batch(&batch);
        drop(m);
        assert_eq!(a.0.len(), 3);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn null_tool_ignores_everything() {
        let mut t = NullTool;
        t.on_call(ThreadId::MAIN, RoutineId::new(0), 0);
        t.on_finish();
        assert_eq!(t.shadow_bytes(), 0);
    }
}
