//! Flat, paged guest memory.
//!
//! Memory is an array of `i64` cells addressed by [`Addr`]. Pages are
//! allocated lazily; unwritten cells read as zero. A bump allocator serves
//! guest `Alloc` instructions.

use drms_trace::Addr;

/// log2 of the page size in cells.
pub const PAGE_BITS: u32 = 12;
/// Page size in cells.
pub const PAGE_CELLS: usize = 1 << PAGE_BITS;

/// Cell-addressed guest memory with lazy page allocation.
///
/// The page table is a dense `Vec` indexed by page number rather than a
/// hash map: guest addresses are bounded (the interpreter rejects
/// anything at or above the shadow-memory address limit) and workloads
/// allocate contiguously from the bump allocator, so the table stays
/// small while every load/store becomes a shift, a bounds check and an
/// index — no hashing on the hot path.
///
/// # Example
/// ```
/// use drms_vm::memory::Memory;
/// use drms_trace::Addr;
/// let mut m = Memory::new(0x1000);
/// let base = m.alloc(16);
/// m.store(base, 42);
/// assert_eq!(m.load(base), 42);
/// assert_eq!(m.load(base.offset(1)), 0); // untouched cells read zero
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    /// Dense page table: `pages[addr >> PAGE_BITS]`, grown to the
    /// highest touched page, `None` for holes.
    pages: Vec<Option<Box<[i64; PAGE_CELLS]>>>,
    /// Number of `Some` entries in `pages`.
    mapped: usize,
    brk: u64,
}

impl Memory {
    /// Creates a memory whose bump allocator starts at `heap_base`.
    pub fn new(heap_base: u64) -> Self {
        Memory {
            pages: Vec::new(),
            mapped: 0,
            brk: heap_base,
        }
    }

    /// Reads one cell; unmapped cells read as zero.
    #[inline]
    pub fn load(&self, addr: Addr) -> i64 {
        let a = addr.raw();
        match self.pages.get((a >> PAGE_BITS) as usize) {
            Some(Some(page)) => page[(a & (PAGE_CELLS as u64 - 1)) as usize],
            _ => 0,
        }
    }

    /// Writes one cell, mapping its page on demand.
    #[inline]
    pub fn store(&mut self, addr: Addr, value: i64) {
        let a = addr.raw();
        let idx = (a >> PAGE_BITS) as usize;
        if idx >= self.pages.len() {
            self.pages.resize_with(idx + 1, || None);
        }
        let slot = &mut self.pages[idx];
        if slot.is_none() {
            *slot = Some(Box::new([0; PAGE_CELLS]));
            self.mapped += 1;
        }
        slot.as_mut().unwrap()[(a & (PAGE_CELLS as u64 - 1)) as usize] = value;
    }

    /// Bump-allocates `cells` contiguous cells (at least one), returning
    /// the base address. Allocations are 8-cell aligned and never reused.
    pub fn alloc(&mut self, cells: u64) -> Addr {
        let cells = cells.max(1);
        let base = self.brk;
        self.brk = (self.brk + cells + 7) & !7;
        Addr::new(base)
    }

    /// Current break (next address the allocator would hand out).
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// Number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.mapped
    }

    /// Bytes of host memory backing mapped guest pages.
    pub fn backing_bytes(&self) -> u64 {
        (self.mapped * PAGE_CELLS * std::mem::size_of::<i64>()) as u64
    }

    /// Copies `values` into memory starting at `base`.
    pub fn store_slice(&mut self, base: Addr, values: &[i64]) {
        for (i, &v) in values.iter().enumerate() {
            self.store(base.offset(i as u64), v);
        }
    }

    /// Reads `len` cells starting at `base`.
    pub fn load_slice(&self, base: Addr, len: u32) -> Vec<i64> {
        let mut out = Vec::new();
        self.load_into(base, len, &mut out);
        out
    }

    /// Reads `len` cells starting at `base`, appending them to `out`.
    ///
    /// Allocation-free when `out` has capacity; the interpreter reuses
    /// one scratch buffer across all `userToKernel` transfers.
    pub fn load_into(&self, base: Addr, len: u32, out: &mut Vec<i64>) {
        out.extend(base.range(len).map(|a| self.load(a)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized_reads() {
        let m = Memory::new(0x100);
        assert_eq!(m.load(Addr::new(12345)), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn store_then_load_across_pages() {
        let mut m = Memory::new(0x100);
        let far = Addr::new((PAGE_CELLS as u64) * 3 + 17);
        m.store(far, -9);
        m.store(Addr::new(1), 4);
        assert_eq!(m.load(far), -9);
        assert_eq!(m.load(Addr::new(1)), 4);
        assert_eq!(m.page_count(), 2);
        assert_eq!(m.backing_bytes(), 2 * PAGE_CELLS as u64 * 8);
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = Memory::new(0x1000);
        let a = m.alloc(3);
        let b = m.alloc(10);
        assert_eq!(a.raw() % 8, 0);
        assert_eq!(b.raw() % 8, 0);
        assert!(b.raw() >= a.raw() + 3);
        let c = m.alloc(0); // zero-size allocations still get a cell
        assert!(c.raw() >= b.raw() + 10);
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let mut m = Memory::new(0);
        let base = Addr::new(50);
        m.store_slice(base, &[1, 2, 3]);
        assert_eq!(m.load_slice(base, 4), vec![1, 2, 3, 0]);
    }
}
