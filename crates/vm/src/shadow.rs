//! Three-level shadow memory.
//!
//! Per §4.1 of the paper, shadow memories are maintained "by means of
//! three-level lookup tables, so that only chunks related to memory cells
//! actually accessed by a thread need to be shadowed". This module is the
//! shared infrastructure used by both the profiling algorithms (timestamp
//! shadows) and the comparison tools (validity bits, vector-clock ids).
//!
//! The address space is split `L1 → L2 → leaf`; leaves hold
//! 2¹² values, second-level tables 2¹¹ leaf slots, and the root 2¹³ slots,
//! covering a 2³⁶-cell space. Unmapped cells read as `T::default()`.
//!
//! Per-access event handlers hit this structure on every guest load and
//! store, so [`ShadowMemory::get`]/[`ShadowMemory::set`] keep a
//! **last-leaf cache**: the walk result of the previous access. Guest
//! accesses are strongly clustered (stack frames, buffers, table scans),
//! so most lookups resolve in the one-comparison fast path without
//! touching the L1/L2 tables.

use drms_trace::Addr;
use std::cell::Cell;
use std::ptr::NonNull;

const LEAF_BITS: u32 = 12;
const L2_BITS: u32 = 11;
const L1_BITS: u32 = 13;

/// Cells per leaf chunk.
pub const LEAF_CELLS: usize = 1 << LEAF_BITS;
const L2_SLOTS: usize = 1 << L2_BITS;
const L1_SLOTS: usize = 1 << L1_BITS;

/// Maximum shadowable address (exclusive).
pub const ADDRESS_LIMIT: u64 = 1 << (LEAF_BITS + L2_BITS + L1_BITS);

type Leaf<T> = Box<[T; LEAF_CELLS]>;

struct Level2<T> {
    leaves: Vec<Option<Leaf<T>>>,
}

impl<T: Copy + Default> Level2<T> {
    fn new() -> Self {
        Level2 {
            leaves: (0..L2_SLOTS).map(|_| None).collect(),
        }
    }
}

/// A sparse, three-level map from guest addresses to shadow values.
///
/// # Example
/// ```
/// use drms_vm::shadow::ShadowMemory;
/// use drms_trace::Addr;
/// let mut s: ShadowMemory<u64> = ShadowMemory::new();
/// assert_eq!(s.get(Addr::new(42)), 0);
/// s.set(Addr::new(42), 7);
/// assert_eq!(s.get(Addr::new(42)), 7);
/// assert_eq!(s.leaf_count(), 1);
/// ```
pub struct ShadowMemory<T> {
    root: Vec<Option<Box<Level2<T>>>>,
    leaf_count: usize,
    /// Last-leaf cache: `(addr >> LEAF_BITS, pointer to the leaf's first
    /// cell, writable)` of the most recent table walk. Leaf chunks are
    /// boxed and never move once materialized (only `clear` frees them),
    /// so the pointer stays valid for the structure's lifetime between
    /// clears. `writable` records whether the pointer was derived from a
    /// mutable borrow (in `set`); pointers cached by `get` carry
    /// read-only provenance and are never written through.
    last: Cell<Option<(u64, NonNull<T>, bool)>>,
    /// Last-leaf fast-path hits (`Cell`: `get` counts through `&self`).
    hits: Cell<u64>,
    /// Full three-level walks, including reads of unmapped cells.
    misses: Cell<u64>,
    /// All `get`/`set` accesses, counted independently of the hit/miss
    /// split so `Metrics::audit` can cross-check `hit + miss == lookups`.
    lookups: Cell<u64>,
    /// Times the cache was explicitly wiped (`clear`, `for_each_mut`).
    invalidations: u64,
    /// Leaf chunks ever materialized (monotonic, unlike `leaf_count`).
    leaf_allocs: u64,
}

/// Snapshot of one [`ShadowMemory`]'s last-leaf cache and leaf-allocator
/// counters. Every leaf-dropping or pointer-superseding path (`clear`,
/// `for_each_mut`) must bump `invalidations` when it wipes the cache —
/// the cache-transparency property tests assert these counters
/// alongside value agreement.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ShadowCacheStats {
    /// Accesses served by the last-leaf fast path.
    pub hits: u64,
    /// Accesses that walked the three-level structure.
    pub misses: u64,
    /// All accesses (`hits + misses` must equal this).
    pub lookups: u64,
    /// Explicit cache wipes.
    pub invalidations: u64,
    /// Leaf chunks ever materialized.
    pub leaf_allocs: u64,
}

impl ShadowCacheStats {
    /// Adds `other`'s counters into `self` (for summing the stats of a
    /// profiler's several shadow memories).
    pub fn absorb(&mut self, other: ShadowCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.lookups += other.lookups;
        self.invalidations += other.invalidations;
        self.leaf_allocs += other.leaf_allocs;
    }
}

// SAFETY: `ShadowMemory` owns every allocation the cached pointer can
// refer to, so moving the whole structure to another thread moves its
// referent along with it. The `Cell` makes it `!Sync`, which is correct:
// the cache is updated through `&self` in `get`.
unsafe impl<T: Send> Send for ShadowMemory<T> {}

impl<T: Copy + Default> Default for ShadowMemory<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default> ShadowMemory<T> {
    /// Creates an empty shadow memory.
    ///
    /// The root table grows on demand up to [`ADDRESS_LIMIT`]'s
    /// `2^13` slots, so an empty shadow costs a few words, not a full
    /// top-level table — the memory reported by [`bytes`](Self::bytes)
    /// tracks the footprint actually shadowed.
    pub fn new() -> Self {
        ShadowMemory {
            root: Vec::new(),
            leaf_count: 0,
            last: Cell::new(None),
            hits: Cell::new(0),
            misses: Cell::new(0),
            lookups: Cell::new(0),
            invalidations: 0,
            leaf_allocs: 0,
        }
    }

    #[inline]
    fn split(addr: Addr) -> (usize, usize, usize) {
        let a = addr.raw();
        debug_assert!(a < ADDRESS_LIMIT, "address {a:#x} beyond shadowable space");
        let leaf = (a & (LEAF_CELLS as u64 - 1)) as usize;
        let l2 = ((a >> LEAF_BITS) & (L2_SLOTS as u64 - 1)) as usize;
        let l1 = (a >> (LEAF_BITS + L2_BITS)) as usize;
        debug_assert!(l1 < L1_SLOTS);
        (l1, l2, leaf)
    }

    /// The cache tag of `addr`: the address with the in-leaf offset
    /// masked off, identifying its leaf chunk.
    #[inline]
    fn leaf_tag(addr: Addr) -> u64 {
        addr.raw() >> LEAF_BITS
    }

    /// Reads the shadow value of `addr`; unmapped cells yield
    /// `T::default()`.
    ///
    /// Accesses hitting the same leaf chunk as the previous `get`/`set`
    /// skip the table walk entirely (the common case: guest accesses are
    /// clustered). [`get_uncached`](Self::get_uncached) is the always-walk
    /// reference path.
    #[inline]
    pub fn get(&self, addr: Addr) -> T {
        self.lookups.set(self.lookups.get() + 1);
        if let Some((tag, ptr, _)) = self.last.get() {
            if tag == Self::leaf_tag(addr) {
                self.hits.set(self.hits.get() + 1);
                let leaf = (addr.raw() & (LEAF_CELLS as u64 - 1)) as usize;
                // SAFETY: `ptr` points to the first cell of a live
                // `LEAF_CELLS`-sized leaf (see the `last` field
                // invariant) and `leaf < LEAF_CELLS`. No `&mut` to the
                // chunk can exist while `&self` is held.
                return unsafe { *ptr.as_ptr().add(leaf) };
            }
        }
        self.misses.set(self.misses.get() + 1);
        let (l1, l2, leaf) = Self::split(addr);
        match self.root.get(l1).and_then(|s| s.as_ref()) {
            Some(level2) => match &level2.leaves[l2] {
                Some(chunk) => {
                    self.last.set(Some((
                        Self::leaf_tag(addr),
                        NonNull::from(&chunk[0]),
                        false,
                    )));
                    chunk[leaf]
                }
                None => T::default(),
            },
            None => T::default(),
        }
    }

    /// Reads the shadow value of `addr` by walking the full three-level
    /// structure, bypassing (and not updating) the last-leaf cache.
    ///
    /// This is the reference path the cached [`get`](Self::get) must
    /// agree with; property tests exercise both on the same sequence.
    #[inline]
    pub fn get_uncached(&self, addr: Addr) -> T {
        let (l1, l2, leaf) = Self::split(addr);
        match self.root.get(l1).and_then(|s| s.as_ref()) {
            Some(level2) => match &level2.leaves[l2] {
                Some(chunk) => chunk[leaf],
                None => T::default(),
            },
            None => T::default(),
        }
    }

    /// Writes the shadow value of `addr`, materializing chunks on demand.
    ///
    /// Like [`get`](Self::get), consecutive writes into one leaf chunk
    /// take a one-comparison fast path.
    #[inline]
    pub fn set(&mut self, addr: Addr, value: T) {
        self.lookups.set(self.lookups.get() + 1);
        if let Some((tag, ptr, true)) = self.last.get() {
            if tag == Self::leaf_tag(addr) {
                self.hits.set(self.hits.get() + 1);
                let leaf = (addr.raw() & (LEAF_CELLS as u64 - 1)) as usize;
                // SAFETY: same invariant as in `get`, plus
                // `writable == true` means the pointer was derived from a
                // mutable borrow; `&mut self` grants exclusive access to
                // the leaf it refers to.
                unsafe { *ptr.as_ptr().add(leaf) = value };
                return;
            }
        }
        self.misses.set(self.misses.get() + 1);
        let (l1, l2, leaf) = Self::split(addr);
        if self.root.len() <= l1 {
            self.root.resize_with(l1 + 1, || None);
        }
        let level2 = self.root[l1].get_or_insert_with(|| Box::new(Level2::new()));
        let chunk = match &mut level2.leaves[l2] {
            Some(c) => c,
            slot @ None => {
                self.leaf_count += 1;
                self.leaf_allocs += 1;
                slot.insert(
                    vec![T::default(); LEAF_CELLS]
                        .into_boxed_slice()
                        .try_into()
                        .unwrap_or_else(|_| unreachable!()),
                )
            }
        };
        chunk[leaf] = value;
        self.last.set(Some((
            Self::leaf_tag(addr),
            NonNull::from(&mut chunk[0]),
            true,
        )));
    }

    /// A mutable reference to the shadow cell of `addr`, materializing
    /// its chunk on demand.
    ///
    /// Lets a read-modify-write (the drms `ts_t` "load old stamp, store
    /// new stamp" pattern) cost one table walk instead of a `get` plus a
    /// `set`. Counted as a single lookup in the cache statistics.
    #[inline]
    pub fn slot_mut(&mut self, addr: Addr) -> &mut T {
        self.lookups.set(self.lookups.get() + 1);
        if let Some((tag, ptr, true)) = self.last.get() {
            if tag == Self::leaf_tag(addr) {
                self.hits.set(self.hits.get() + 1);
                let leaf = (addr.raw() & (LEAF_CELLS as u64 - 1)) as usize;
                // SAFETY: same invariant as in `set`: the pointer was
                // derived from a mutable borrow of a live leaf chunk and
                // `&mut self` grants exclusive access for the returned
                // lifetime.
                return unsafe { &mut *ptr.as_ptr().add(leaf) };
            }
        }
        self.misses.set(self.misses.get() + 1);
        let (l1, l2, leaf) = Self::split(addr);
        if self.root.len() <= l1 {
            self.root.resize_with(l1 + 1, || None);
        }
        let level2 = self.root[l1].get_or_insert_with(|| Box::new(Level2::new()));
        let chunk = match &mut level2.leaves[l2] {
            Some(c) => c,
            slot @ None => {
                self.leaf_count += 1;
                self.leaf_allocs += 1;
                slot.insert(
                    vec![T::default(); LEAF_CELLS]
                        .into_boxed_slice()
                        .try_into()
                        .unwrap_or_else(|_| unreachable!()),
                )
            }
        };
        self.last.set(Some((
            Self::leaf_tag(addr),
            NonNull::from(&mut chunk[0]),
            true,
        )));
        &mut chunk[leaf]
    }

    /// Number of materialized leaf chunks.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Host bytes backing this shadow memory (leaves plus tables).
    pub fn bytes(&self) -> u64 {
        let leaf_bytes = self.leaf_count as u64 * (LEAF_CELLS * std::mem::size_of::<T>()) as u64;
        let l2_bytes = self.root.iter().filter(|s| s.is_some()).count() as u64
            * (L2_SLOTS * std::mem::size_of::<usize>()) as u64;
        let root_bytes = (self.root.capacity() * std::mem::size_of::<usize>()) as u64;
        leaf_bytes + l2_bytes + root_bytes
    }

    /// Applies `f` to every cell of every materialized chunk.
    ///
    /// Used by the timestamp-renumbering pass, which must rewrite all
    /// stored timestamps in place.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(Addr, &mut T)) {
        // The fresh `&mut` borrows below supersede the cached pointer's
        // provenance; drop it rather than write through a stale tag later.
        self.last.set(None);
        self.invalidations += 1;
        for (i1, slot1) in self.root.iter_mut().enumerate() {
            let Some(level2) = slot1 else { continue };
            for (i2, slot2) in level2.leaves.iter_mut().enumerate() {
                let Some(chunk) = slot2 else { continue };
                let base = ((i1 as u64) << (LEAF_BITS + L2_BITS)) | ((i2 as u64) << LEAF_BITS);
                for (off, cell) in chunk.iter_mut().enumerate() {
                    f(Addr::new(base | off as u64), cell);
                }
            }
        }
    }

    /// Drops all materialized chunks.
    ///
    /// Cache counters survive: a session that clears and re-populates
    /// its shadows keeps one continuous hit/miss/invalidation history,
    /// which is what the staleness tripwire audits.
    pub fn clear(&mut self) {
        // The cached leaf pointer dangles once its chunk is freed.
        self.last.set(None);
        self.invalidations += 1;
        self.root.clear();
        self.leaf_count = 0;
    }

    /// Snapshot of the cache and allocation counters.
    pub fn cache_stats(&self) -> ShadowCacheStats {
        ShadowCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            lookups: self.lookups.get(),
            invalidations: self.invalidations,
            leaf_allocs: self.leaf_allocs,
        }
    }
}

impl<T: Copy + Default> std::fmt::Debug for ShadowMemory<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowMemory")
            .field("leaf_count", &self.leaf_count)
            .field("bytes", &self.bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reads_zero() {
        let s: ShadowMemory<u64> = ShadowMemory::new();
        assert_eq!(s.get(Addr::new(0)), 0);
        assert_eq!(s.get(Addr::new(ADDRESS_LIMIT - 1)), 0);
        assert_eq!(s.leaf_count(), 0);
    }

    #[test]
    fn set_get_roundtrip_across_levels() {
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        let addrs = [
            0u64,
            1,
            LEAF_CELLS as u64,              // second leaf
            (LEAF_CELLS * L2_SLOTS) as u64, // second L2 table
            ADDRESS_LIMIT - 1,              // last cell
        ];
        for (i, &a) in addrs.iter().enumerate() {
            s.set(Addr::new(a), i as u64 + 1);
        }
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(s.get(Addr::new(a)), i as u64 + 1, "addr {a:#x}");
        }
        assert_eq!(s.leaf_count(), 4, "two addrs share the first leaf");
    }

    #[test]
    fn sparse_allocation_only_touched_chunks() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        s.set(Addr::new(5), 1);
        s.set(Addr::new(6), 2);
        assert_eq!(s.leaf_count(), 1);
        let before = s.bytes();
        s.set(Addr::new((LEAF_CELLS * 10) as u64), 3);
        assert!(s.bytes() > before);
        assert_eq!(s.leaf_count(), 2);
    }

    #[test]
    fn for_each_mut_visits_and_rewrites() {
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        s.set(Addr::new(3), 10);
        s.set(Addr::new((LEAF_CELLS + 1) as u64), 20);
        let mut seen = Vec::new();
        s.for_each_mut(|addr, v| {
            if *v != 0 {
                seen.push((addr.raw(), *v));
                *v += 1;
            }
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(3, 10), (LEAF_CELLS as u64 + 1, 20)]);
        assert_eq!(s.get(Addr::new(3)), 11);
        assert_eq!(s.get(Addr::new((LEAF_CELLS + 1) as u64)), 21);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        s.set(Addr::new(100), 9);
        s.clear();
        assert_eq!(s.get(Addr::new(100)), 0);
        assert_eq!(s.leaf_count(), 0);
    }

    #[test]
    fn cached_and_uncached_reads_agree_across_leaf_switches() {
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        let a = Addr::new(10);
        let b = Addr::new((LEAF_CELLS * 3 + 5) as u64); // different leaf
        s.set(a, 1); // cache -> leaf of a
        s.set(b, 2); // cache -> leaf of b
        assert_eq!(s.get(a), 1, "switch back via slow path");
        assert_eq!(s.get(a), 1, "now served from the cache");
        assert_eq!(s.get_uncached(a), 1);
        assert_eq!(s.get_uncached(b), 2);
        // Cached write after cached read of the same leaf.
        s.set(a, 9);
        assert_eq!(s.get_uncached(a), 9);
        assert_eq!(s.get(Addr::new(11)), 0, "cache hit on an unset cell");
    }

    #[test]
    fn clear_invalidates_the_leaf_cache() {
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        s.set(Addr::new(42), 7);
        assert_eq!(s.get(Addr::new(42)), 7);
        s.clear();
        assert_eq!(s.get(Addr::new(42)), 0, "no stale read through the cache");
        s.set(Addr::new(42), 3);
        assert_eq!(s.get(Addr::new(42)), 3);
        let st = s.cache_stats();
        assert_eq!(st.invalidations, 1, "one clear, one invalidation");
        assert_eq!(st.leaf_allocs, 2, "the leaf was re-materialized");
        assert_eq!(st.hits + st.misses, st.lookups);
    }

    #[test]
    fn cache_counters_track_hits_misses_and_wipes() {
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        assert_eq!(s.cache_stats(), ShadowCacheStats::default());
        s.set(Addr::new(1), 1); // miss (materialize)
        s.set(Addr::new(2), 2); // hit (same leaf, writable cache)
        assert_eq!(s.get(Addr::new(1)), 1); // hit
        assert_eq!(s.get(Addr::new((LEAF_CELLS * 5) as u64)), 0); // miss, unmapped
        let st = s.cache_stats();
        assert_eq!((st.hits, st.misses, st.lookups), (2, 2, 4));
        assert_eq!(st.leaf_allocs, 1);
        s.for_each_mut(|_, _| {});
        assert_eq!(s.cache_stats().invalidations, 1, "for_each_mut wipes");
        assert_eq!(
            s.get_uncached(Addr::new(1)),
            1,
            "reference path counts nothing"
        );
        assert_eq!(s.cache_stats().lookups, 4);
    }

    /// Seeded-loop property: interleaving `clear()` (and `for_each_mut`)
    /// with re-population keeps the cached path transparent — every read
    /// agrees with the uncached reference walk — while the counters obey
    /// `hits + misses == lookups` and count one invalidation per wipe.
    #[test]
    fn cache_transparent_across_interleaved_clears_and_repopulation() {
        let mut rng = crate::rng::SmallRng::seed_from_u64(0x5AD0_CAFE);
        for round in 0..20u64 {
            let mut s: ShadowMemory<u64> = ShadowMemory::new();
            let mut wipes = 0;
            let mut ops = 0;
            for step in 0..400u64 {
                let addr = Addr::new(rng.gen_range(0..(LEAF_CELLS as u64 * 4)));
                match rng.gen_range(0..10u32) {
                    0 => {
                        s.clear();
                        wipes += 1;
                    }
                    1 => {
                        s.for_each_mut(|_, v| *v = v.wrapping_add(1));
                        wipes += 1;
                    }
                    2..=5 => {
                        s.set(addr, round * 1000 + step);
                        ops += 1;
                    }
                    _ => {
                        let cached = s.get(addr);
                        let reference = s.get_uncached(addr);
                        assert_eq!(cached, reference, "round {round} step {step}");
                        ops += 1;
                    }
                }
            }
            let st = s.cache_stats();
            assert_eq!(st.hits + st.misses, st.lookups, "round {round}");
            assert_eq!(st.lookups, ops, "round {round}: every access counted");
            assert_eq!(st.invalidations, wipes, "round {round}: every wipe counted");
            assert!(st.leaf_allocs >= s.leaf_count() as u64);
        }
    }

    #[test]
    fn overwrite_keeps_single_leaf() {
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        for v in 0..100 {
            s.set(Addr::new(7), v);
        }
        assert_eq!(s.get(Addr::new(7)), 99);
        assert_eq!(s.leaf_count(), 1);
    }
}
