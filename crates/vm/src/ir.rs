//! The guest intermediate representation.
//!
//! Guest programs are collections of [`Routine`]s made of [`Block`]s
//! (basic blocks) holding straight-line [`Inst`]ructions and ending in a
//! [`Terminator`]. Values are `i64` cells; locals live in per-frame virtual
//! registers; memory is a flat cell-addressed space shared by all threads.
//!
//! Basic blocks are the unit of the cost measure, exactly as in the paper:
//! each block *entered* at run time adds one to the executing thread's
//! cumulative cost.

use crate::kernel::Syscall;
use drms_trace::{Addr, BlockId, RoutineId};
use std::fmt;

/// Index of a virtual register within a routine frame.
pub type Reg = u16;

/// An instruction operand: either a register or an immediate value.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Operand {
    /// Read the value of a frame register.
    Reg(Reg),
    /// A constant.
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v as i64)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v as i64)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "r{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Binary operations over `i64` values.
///
/// Comparison operators produce `1` or `0`. Division and remainder by zero
/// are run-time errors; shifts mask their right operand to six bits.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Min,
    Max,
}

impl BinOp {
    /// Applies the operation. Returns `None` on division/remainder by zero.
    pub fn apply(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Eq => (a == b) as i64,
            BinOp::Ne => (a != b) as i64,
            BinOp::Lt => (a < b) as i64,
            BinOp::Le => (a <= b) as i64,
            BinOp::Gt => (a > b) as i64,
            BinOp::Ge => (a >= b) as i64,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        })
    }
}

/// A straight-line guest instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    /// `dst = src`.
    Mov { dst: Reg, src: Operand },
    /// `dst = lhs op rhs`.
    Bin {
        op: BinOp,
        dst: Reg,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = memory[base + offset]`; emits a `read` event.
    Load {
        dst: Reg,
        base: Operand,
        offset: Operand,
    },
    /// `memory[base + offset] = src`; emits a `write` event.
    Store {
        base: Operand,
        offset: Operand,
        src: Operand,
    },
    /// Bump-allocates `cells` fresh memory cells; `dst` receives the base.
    Alloc { dst: Reg, cells: Operand },
    /// Calls `routine` with `args`; an optional register receives the
    /// return value.
    Call {
        routine: RoutineId,
        args: Vec<Operand>,
        dst: Option<Reg>,
    },
    /// Spawns a new thread rooted at `routine`; `dst` receives its id.
    Spawn {
        routine: RoutineId,
        args: Vec<Operand>,
        dst: Reg,
    },
    /// Blocks until the thread whose id is `thread` exits.
    Join { thread: Operand },
    /// Semaphore P operation; blocks while the value is zero.
    SemWait { sem: u32 },
    /// Semaphore V operation.
    SemSignal { sem: u32 },
    /// Acquires a mutex; blocks while held by another thread.
    MutexLock { mutex: u32 },
    /// Releases a mutex held by the current thread.
    MutexUnlock { mutex: u32 },
    /// Atomically releases `mutex` and waits on `cond`; re-acquires the
    /// mutex before resuming.
    CondWait { cond: u32, mutex: u32 },
    /// Wakes one waiter of `cond`.
    CondSignal { cond: u32 },
    /// Wakes all waiters of `cond`.
    CondBroadcast { cond: u32 },
    /// Invokes a kernel system call; `dst` receives the transfer length.
    Syscall { call: Syscall, dst: Option<Reg> },
    /// `dst = uniform integer in [0, bound)` from the thread's seeded RNG.
    Rand { dst: Reg, bound: Operand },
    /// Voluntarily ends the scheduling quantum.
    Yield,
}

/// The control-transfer instruction ending a basic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on `cond != 0`.
    Branch {
        cond: Operand,
        then_block: BlockId,
        else_block: BlockId,
    },
    /// Return from the routine with an optional value.
    Ret(Option<Operand>),
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Straight-line body.
    pub insts: Vec<Inst>,
    /// Control transfer ending the block.
    pub term: Terminator,
}

/// A guest routine.
#[derive(Clone, Debug, PartialEq)]
pub struct Routine {
    /// Human-readable name, reported in profiles.
    pub name: String,
    /// Number of parameters; parameters occupy registers `0..params`.
    pub params: u16,
    /// Total number of frame registers (including parameters).
    pub regs: u16,
    /// The routine's basic blocks.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
}

/// Error detected by [`Program::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// A block terminator targets a block index out of range.
    BadBlockTarget { routine: RoutineId, block: BlockId },
    /// An instruction references a register `>= regs`.
    BadRegister { routine: RoutineId, reg: Reg },
    /// A call or spawn names a routine id out of range.
    BadRoutineRef { routine: RoutineId },
    /// The routine's entry block is out of range.
    BadEntry { routine: RoutineId },
    /// `params` exceeds `regs`.
    BadParamCount { routine: RoutineId },
    /// A call/spawn passes a number of arguments different from the
    /// callee's parameter count.
    BadArity {
        routine: RoutineId,
        callee: RoutineId,
    },
    /// A synchronization instruction names an object out of range.
    BadSyncObject { routine: RoutineId },
    /// The main routine id is out of range.
    BadMain,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadBlockTarget { routine, block } => {
                write!(f, "routine {routine}: branch to missing {block}")
            }
            ValidateError::BadRegister { routine, reg } => {
                write!(f, "routine {routine}: register r{reg} out of range")
            }
            ValidateError::BadRoutineRef { routine } => {
                write!(f, "routine {routine}: reference to missing routine")
            }
            ValidateError::BadEntry { routine } => {
                write!(f, "routine {routine}: entry block out of range")
            }
            ValidateError::BadParamCount { routine } => {
                write!(f, "routine {routine}: params exceed register count")
            }
            ValidateError::BadArity { routine, callee } => {
                write!(f, "routine {routine}: wrong arity calling {callee}")
            }
            ValidateError::BadSyncObject { routine } => {
                write!(f, "routine {routine}: sync object out of range")
            }
            ValidateError::BadMain => write!(f, "main routine id out of range"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// A complete guest program.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    pub(crate) routines: Vec<Routine>,
    pub(crate) main: RoutineId,
    pub(crate) semaphores: Vec<i64>,
    pub(crate) mutexes: u32,
    pub(crate) conds: u32,
    /// `(base, initial contents)` of each global array.
    pub(crate) globals: Vec<(Addr, Vec<i64>)>,
    /// First address available to the heap allocator.
    pub(crate) heap_base: u64,
}

impl Program {
    /// The routine executed by the main thread.
    pub fn main(&self) -> RoutineId {
        self.main
    }

    /// All routines, indexed by [`RoutineId`].
    pub fn routines(&self) -> &[Routine] {
        &self.routines
    }

    /// Returns a routine by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn routine(&self, id: RoutineId) -> &Routine {
        &self.routines[id.index() as usize]
    }

    /// Returns the name of a routine.
    pub fn routine_name(&self, id: RoutineId) -> &str {
        &self.routine(id).name
    }

    /// Looks up a routine id by name.
    pub fn routine_by_name(&self, name: &str) -> Option<RoutineId> {
        self.routines
            .iter()
            .position(|r| r.name == name)
            .map(|i| RoutineId::new(i as u32))
    }

    /// A [`drms_trace::NameTable`] mapping routine ids to names.
    pub fn name_table(&self) -> drms_trace::NameTable {
        self.routines.iter().map(|r| r.name.clone()).collect()
    }

    /// Initial values of the program's semaphores.
    pub fn semaphores(&self) -> &[i64] {
        &self.semaphores
    }

    /// Number of mutexes.
    pub fn mutex_count(&self) -> u32 {
        self.mutexes
    }

    /// Number of condition variables.
    pub fn cond_count(&self) -> u32 {
        self.conds
    }

    /// Global arrays as `(base address, initial contents)` pairs.
    pub fn globals(&self) -> &[(Addr, Vec<i64>)] {
        &self.globals
    }

    /// First heap address.
    pub fn heap_base(&self) -> u64 {
        self.heap_base
    }

    /// Structural validation: every register, block target, routine
    /// reference, arity and synchronization object must be in range.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.main.index() as usize >= self.routines.len() {
            return Err(ValidateError::BadMain);
        }
        for (idx, routine) in self.routines.iter().enumerate() {
            let rid = RoutineId::new(idx as u32);
            if routine.params > routine.regs {
                return Err(ValidateError::BadParamCount { routine: rid });
            }
            if routine.entry.index() as usize >= routine.blocks.len() {
                return Err(ValidateError::BadEntry { routine: rid });
            }
            for block in &routine.blocks {
                for inst in &block.insts {
                    self.validate_inst(rid, routine, inst)?;
                }
                let check = |b: BlockId| {
                    if b.index() as usize >= routine.blocks.len() {
                        Err(ValidateError::BadBlockTarget {
                            routine: rid,
                            block: b,
                        })
                    } else {
                        Ok(())
                    }
                };
                match block.term {
                    Terminator::Jump(b) => check(b)?,
                    Terminator::Branch {
                        cond,
                        then_block,
                        else_block,
                    } => {
                        self.validate_operand(rid, routine, cond)?;
                        check(then_block)?;
                        check(else_block)?;
                    }
                    Terminator::Ret(Some(v)) => self.validate_operand(rid, routine, v)?,
                    Terminator::Ret(None) => {}
                }
            }
        }
        Ok(())
    }

    fn validate_operand(
        &self,
        rid: RoutineId,
        routine: &Routine,
        op: Operand,
    ) -> Result<(), ValidateError> {
        if let Operand::Reg(r) = op {
            if r >= routine.regs {
                return Err(ValidateError::BadRegister {
                    routine: rid,
                    reg: r,
                });
            }
        }
        Ok(())
    }

    fn validate_reg(&self, rid: RoutineId, routine: &Routine, r: Reg) -> Result<(), ValidateError> {
        if r >= routine.regs {
            return Err(ValidateError::BadRegister {
                routine: rid,
                reg: r,
            });
        }
        Ok(())
    }

    fn validate_callee(
        &self,
        rid: RoutineId,
        callee: RoutineId,
        args: &[Operand],
    ) -> Result<(), ValidateError> {
        let Some(target) = self.routines.get(callee.index() as usize) else {
            return Err(ValidateError::BadRoutineRef { routine: rid });
        };
        if args.len() != target.params as usize {
            return Err(ValidateError::BadArity {
                routine: rid,
                callee,
            });
        }
        Ok(())
    }

    fn validate_inst(
        &self,
        rid: RoutineId,
        routine: &Routine,
        inst: &Inst,
    ) -> Result<(), ValidateError> {
        let op = |o: Operand| self.validate_operand(rid, routine, o);
        let reg = |r: Reg| self.validate_reg(rid, routine, r);
        match inst {
            Inst::Mov { dst, src } => {
                reg(*dst)?;
                op(*src)?;
            }
            Inst::Bin { dst, lhs, rhs, .. } => {
                reg(*dst)?;
                op(*lhs)?;
                op(*rhs)?;
            }
            Inst::Load { dst, base, offset } => {
                reg(*dst)?;
                op(*base)?;
                op(*offset)?;
            }
            Inst::Store { base, offset, src } => {
                op(*base)?;
                op(*offset)?;
                op(*src)?;
            }
            Inst::Alloc { dst, cells } => {
                reg(*dst)?;
                op(*cells)?;
            }
            Inst::Call {
                routine: callee,
                args,
                dst,
            } => {
                for a in args {
                    op(*a)?;
                }
                if let Some(d) = dst {
                    reg(*d)?;
                }
                self.validate_callee(rid, *callee, args)?;
            }
            Inst::Spawn {
                routine: callee,
                args,
                dst,
            } => {
                for a in args {
                    op(*a)?;
                }
                reg(*dst)?;
                self.validate_callee(rid, *callee, args)?;
            }
            Inst::Join { thread } => op(*thread)?,
            Inst::SemWait { sem } | Inst::SemSignal { sem } => {
                if *sem as usize >= self.semaphores.len() {
                    return Err(ValidateError::BadSyncObject { routine: rid });
                }
            }
            Inst::MutexLock { mutex } | Inst::MutexUnlock { mutex } => {
                if *mutex >= self.mutexes {
                    return Err(ValidateError::BadSyncObject { routine: rid });
                }
            }
            Inst::CondWait { cond, mutex } => {
                if *cond >= self.conds || *mutex >= self.mutexes {
                    return Err(ValidateError::BadSyncObject { routine: rid });
                }
            }
            Inst::CondSignal { cond } | Inst::CondBroadcast { cond } => {
                if *cond >= self.conds {
                    return Err(ValidateError::BadSyncObject { routine: rid });
                }
            }
            Inst::Syscall { call, dst } => {
                op(call.fd)?;
                op(call.buf)?;
                op(call.len)?;
                op(call.offset)?;
                if let Some(d) = dst {
                    reg(*d)?;
                }
            }
            Inst::Rand { dst, bound } => {
                reg(*dst)?;
                op(*bound)?;
            }
            Inst::Yield => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Syscall, SyscallNo};

    fn leaf_routine(name: &str) -> Routine {
        Routine {
            name: name.to_owned(),
            params: 0,
            regs: 1,
            blocks: vec![Block {
                insts: vec![Inst::Mov {
                    dst: 0,
                    src: Operand::Imm(1),
                }],
                term: Terminator::Ret(None),
            }],
            entry: BlockId::new(0),
        }
    }

    fn program_of(routines: Vec<Routine>) -> Program {
        Program {
            routines,
            main: RoutineId::new(0),
            semaphores: vec![],
            mutexes: 0,
            conds: 0,
            globals: vec![],
            heap_base: 0x10000,
        }
    }

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(2, 3), Some(5));
        assert_eq!(BinOp::Div.apply(7, 2), Some(3));
        assert_eq!(BinOp::Div.apply(7, 0), None);
        assert_eq!(BinOp::Rem.apply(7, 0), None);
        assert_eq!(BinOp::Lt.apply(1, 2), Some(1));
        assert_eq!(BinOp::Ge.apply(1, 2), Some(0));
        assert_eq!(BinOp::Min.apply(4, -2), Some(-2));
        assert_eq!(BinOp::Max.apply(4, -2), Some(4));
        assert_eq!(BinOp::Shl.apply(1, 65), Some(2)); // masked shift
        assert_eq!(BinOp::Mul.apply(i64::MAX, 2), Some(-2)); // wrapping
    }

    #[test]
    fn validate_accepts_minimal_program() {
        let p = program_of(vec![leaf_routine("main")]);
        assert!(p.validate().is_ok());
        assert_eq!(p.routine_name(RoutineId::new(0)), "main");
        assert_eq!(p.routine_by_name("main"), Some(RoutineId::new(0)));
        assert_eq!(p.routine_by_name("nope"), None);
    }

    #[test]
    fn validate_rejects_bad_register() {
        let mut p = program_of(vec![leaf_routine("main")]);
        p.routines[0].blocks[0].insts[0] = Inst::Mov {
            dst: 9,
            src: Operand::Imm(0),
        };
        assert_eq!(
            p.validate(),
            Err(ValidateError::BadRegister {
                routine: RoutineId::new(0),
                reg: 9
            })
        );
    }

    #[test]
    fn validate_rejects_bad_branch_target() {
        let mut p = program_of(vec![leaf_routine("main")]);
        p.routines[0].blocks[0].term = Terminator::Jump(BlockId::new(7));
        assert!(matches!(
            p.validate(),
            Err(ValidateError::BadBlockTarget { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_callee_and_arity() {
        let mut p = program_of(vec![leaf_routine("main"), leaf_routine("f")]);
        p.routines[0].blocks[0].insts.push(Inst::Call {
            routine: RoutineId::new(9),
            args: vec![],
            dst: None,
        });
        assert!(matches!(
            p.validate(),
            Err(ValidateError::BadRoutineRef { .. })
        ));
        p.routines[0].blocks[0].insts.pop();
        p.routines[0].blocks[0].insts.push(Inst::Call {
            routine: RoutineId::new(1),
            args: vec![Operand::Imm(1)],
            dst: None,
        });
        assert!(matches!(p.validate(), Err(ValidateError::BadArity { .. })));
    }

    #[test]
    fn validate_rejects_bad_sync_objects() {
        let mut p = program_of(vec![leaf_routine("main")]);
        p.routines[0].blocks[0].insts.push(Inst::SemWait { sem: 0 });
        assert!(matches!(
            p.validate(),
            Err(ValidateError::BadSyncObject { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_main_and_entry() {
        let mut p = program_of(vec![leaf_routine("main")]);
        p.main = RoutineId::new(3);
        assert_eq!(p.validate(), Err(ValidateError::BadMain));
        p.main = RoutineId::new(0);
        p.routines[0].entry = BlockId::new(4);
        assert!(matches!(p.validate(), Err(ValidateError::BadEntry { .. })));
    }

    #[test]
    fn validate_checks_syscall_operands() {
        let mut p = program_of(vec![leaf_routine("main")]);
        p.routines[0].blocks[0].insts.push(Inst::Syscall {
            call: Syscall {
                no: SyscallNo::Read,
                fd: Operand::Imm(0),
                buf: Operand::Reg(5),
                len: Operand::Imm(1),
                offset: Operand::Imm(0),
            },
            dst: None,
        });
        assert!(matches!(
            p.validate(),
            Err(ValidateError::BadRegister { .. })
        ));
    }

    #[test]
    fn name_table_matches_routines() {
        let p = program_of(vec![leaf_routine("a"), leaf_routine("b")]);
        let t = p.name_table();
        assert_eq!(t.name(RoutineId::new(1)), "b");
    }
}
