//! Deterministic kernel fault injection.
//!
//! A [`FaultPlan`] is a seeded, reproducible schedule of I/O faults —
//! short reads/writes, transient errors (EINTR/EAGAIN) and hard device
//! failures (EIO) — evaluated by the kernel model on every syscall
//! transfer. Because the VM serializes guest threads, the sequence of
//! transfer attempts per run configuration is fixed, so a plan plus a
//! seed reproduces the exact same fault sequence on every run: fault
//! experiments are as replayable as fault-free ones.
//!
//! # Spec grammar
//!
//! A plan is written as comma- or semicolon-separated elements:
//!
//! ```text
//! spec    := element ( (","|";") element )*
//! element := "seed=" INT | rule
//! rule    := selector* kind [ ":" trigger ]
//! selector:= ("fd" INT | "in" | "out") ":"
//! kind    := "shortread" | "shortwrite" | "eintr" | "eagain" | "eio"
//! trigger := "every=" INT [ "+" INT ]   (period, optional phase)
//!          | "p=" INT "/" INT           (probability num/den)
//!          | "once=" INT                (a single 1-based op index)
//! ```
//!
//! Examples: `fd0:shortread:every=3`, `in:eintr:p=1/8`,
//! `seed=42,fd1:eio:once=100`. A rule with no trigger fires on every
//! matching operation. Transfer operations are numbered from 1 per
//! file descriptor; `every=N` fires on ops `N, 2N, 3N, …` and
//! `every=N+P` shifts that schedule by `P`.

use crate::kernel::Direction;
use crate::rng::SmallRng;
use std::fmt;

/// What kind of fault to inject on a matching operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Deliver only part of the requested length (≥ 1 cell).
    ShortRead,
    /// Accept only part of the provided data (≥ 1 cell).
    ShortWrite,
    /// Fail the call with EINTR; retrying succeeds.
    Eintr,
    /// Fail the call with EAGAIN; retrying succeeds.
    Eagain,
    /// Fail the device permanently with EIO; all later operations on
    /// the same descriptor fail too.
    Eio,
}

impl FaultKind {
    /// The spec-grammar token for this kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ShortRead => "shortread",
            FaultKind::ShortWrite => "shortwrite",
            FaultKind::Eintr => "eintr",
            FaultKind::Eagain => "eagain",
            FaultKind::Eio => "eio",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// When a matching rule actually fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fires on every `period`-th matching op, shifted by `phase`.
    Every { period: u64, phase: u64 },
    /// Fires with probability `num/den`, drawn from the plan's seeded
    /// generator.
    Prob { num: u32, den: u32 },
    /// Fires exactly once, on the `at`-th matching op (1-based).
    Once { at: u64 },
}

impl FaultTrigger {
    /// Whether the trigger fires for the `op`-th matching operation
    /// (1-based). `Prob` triggers consume one draw from `rng`.
    fn fires(self, op: u64, rng: &mut SmallRng) -> bool {
        match self {
            FaultTrigger::Every { period, phase } => {
                period > 0 && op % period == phase % period.max(1)
            }
            FaultTrigger::Prob { num, den } => den > 0 && rng.gen_ratio(num, den),
            FaultTrigger::Once { at } => op == at,
        }
    }
}

impl fmt::Display for FaultTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTrigger::Every { period, phase: 0 } => write!(f, "every={period}"),
            FaultTrigger::Every { period, phase } => write!(f, "every={period}+{phase}"),
            FaultTrigger::Prob { num, den } => write!(f, "p={num}/{den}"),
            FaultTrigger::Once { at } => write!(f, "once={at}"),
        }
    }
}

/// One fault-injection rule: which operations it matches and what it
/// injects when its trigger fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// Restrict to one file descriptor (`None` = any).
    pub fd: Option<i64>,
    /// Restrict to one transfer direction (`None` = any).
    pub class: Option<Direction>,
    /// The fault to inject.
    pub kind: FaultKind,
    /// When to inject it.
    pub trigger: FaultTrigger,
}

impl FaultRule {
    fn matches(&self, fd: i64, dir: Direction) -> bool {
        self.fd.is_none_or(|want| want == fd) && self.class.is_none_or(|want| want == dir)
    }
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(fd) = self.fd {
            write!(f, "fd{fd}:")?;
        }
        match self.class {
            Some(Direction::Input) => f.write_str("in:")?,
            Some(Direction::Output) => f.write_str("out:")?,
            None => {}
        }
        write!(f, "{}:{}", self.kind, self.trigger)
    }
}

/// A malformed fault-spec string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpecError {
    /// What was wrong, mentioning the offending element.
    pub message: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.message)
    }
}

impl std::error::Error for FaultSpecError {}

fn spec_error(message: impl Into<String>) -> FaultSpecError {
    FaultSpecError {
        message: message.into(),
    }
}

/// A seeded, reproducible fault-injection schedule.
///
/// Rules are evaluated in order; the first matching rule whose trigger
/// fires decides the fault for an operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for probabilistic triggers.
    pub seed: u64,
    /// Rules in priority order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parses a spec string (see the module docs for the grammar).
    ///
    /// # Errors
    /// Returns [`FaultSpecError`] naming the malformed element.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::default();
        let mut seed_seen = false;
        for element in spec
            .split([',', ';'])
            .map(str::trim)
            .filter(|e| !e.is_empty())
        {
            if let Some(seed) = element.strip_prefix("seed=") {
                if seed_seen {
                    return Err(spec_error(format!(
                        "`{element}`: duplicate seed element (seed already set to {})",
                        plan.seed
                    )));
                }
                seed_seen = true;
                plan.seed = seed
                    .parse()
                    .map_err(|_| spec_error(format!("`{element}`: seed must be an integer")))?;
                continue;
            }
            plan.rules.push(parse_rule(element)?);
        }
        if plan.rules.is_empty() {
            return Err(spec_error("no rules given"));
        }
        check_rule_consistency(&plan.rules)?;
        Ok(plan)
    }
}

/// Whether the trigger fires on every matching operation.
fn always_fires(t: FaultTrigger) -> bool {
    match t {
        FaultTrigger::Every { period: 1, .. } => true,
        FaultTrigger::Prob { num, den } => den > 0 && num >= den,
        _ => false,
    }
}

/// Whether every operation matched by `b`'s selectors is also matched
/// by `a`'s (i.e. `a` is equally or more general).
fn covers(a: &FaultRule, b: &FaultRule) -> bool {
    (a.fd.is_none() || a.fd == b.fd) && (a.class.is_none() || a.class == b.class)
}

/// Rejects duplicate and contradictory (unreachable) rules: since the
/// first matching rule that fires wins, a later rule shadowed by an
/// equally-general, always-firing earlier rule is dead configuration —
/// almost certainly a typo in the spec — and an exact duplicate can
/// only ever lose the race to its first copy.
fn check_rule_consistency(rules: &[FaultRule]) -> Result<(), FaultSpecError> {
    for (i, rule) in rules.iter().enumerate() {
        for earlier in &rules[..i] {
            if earlier == rule {
                return Err(spec_error(format!(
                    "duplicate rule `{rule}`: an identical earlier rule already decides \
                     these operations"
                )));
            }
            if covers(earlier, rule) && always_fires(earlier.trigger) {
                return Err(spec_error(format!(
                    "rule `{rule}` can never fire: earlier rule `{earlier}` matches the \
                     same operations and always fires first"
                )));
            }
        }
    }
    Ok(())
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for rule in &self.rules {
            write!(f, ",{rule}")?;
        }
        Ok(())
    }
}

fn parse_rule(element: &str) -> Result<FaultRule, FaultSpecError> {
    let mut fd = None;
    let mut class = None;
    let mut kind = None;
    let mut trigger = None;
    for token in element.split(':').map(str::trim) {
        if let Some(n) = token.strip_prefix("fd") {
            if kind.is_some() {
                return Err(spec_error(format!("`{element}`: selector after kind")));
            }
            fd = Some(
                n.parse()
                    .map_err(|_| spec_error(format!("`{element}`: bad fd number `{token}`")))?,
            );
        } else if token == "in" || token == "out" {
            if kind.is_some() {
                return Err(spec_error(format!("`{element}`: selector after kind")));
            }
            class = Some(if token == "in" {
                Direction::Input
            } else {
                Direction::Output
            });
        } else if let Some(k) = parse_kind(token) {
            if kind.is_some() {
                return Err(spec_error(format!("`{element}`: more than one fault kind")));
            }
            kind = Some(k);
        } else if kind.is_some() && trigger.is_none() {
            trigger = Some(parse_trigger(element, token)?);
        } else {
            return Err(spec_error(format!(
                "`{element}`: unknown token `{token}` (expected fd<N>, in, out, a fault \
                 kind, or a trigger)"
            )));
        }
    }
    let kind = kind.ok_or_else(|| spec_error(format!("`{element}`: missing fault kind")))?;
    Ok(FaultRule {
        fd,
        class,
        kind,
        trigger: trigger.unwrap_or(FaultTrigger::Every {
            period: 1,
            phase: 0,
        }),
    })
}

fn parse_kind(token: &str) -> Option<FaultKind> {
    match token {
        "shortread" | "short_read" => Some(FaultKind::ShortRead),
        "shortwrite" | "short_write" => Some(FaultKind::ShortWrite),
        "eintr" => Some(FaultKind::Eintr),
        "eagain" => Some(FaultKind::Eagain),
        "eio" => Some(FaultKind::Eio),
        _ => None,
    }
}

fn parse_trigger(element: &str, token: &str) -> Result<FaultTrigger, FaultSpecError> {
    let int = |s: &str, what: &str| -> Result<u64, FaultSpecError> {
        s.parse()
            .map_err(|_| spec_error(format!("`{element}`: bad {what} `{s}`")))
    };
    if let Some(rest) = token.strip_prefix("every=") {
        let (period, phase) = match rest.split_once('+') {
            Some((p, ph)) => (int(p, "period")?, int(ph, "phase")?),
            None => (int(rest, "period")?, 0),
        };
        if period == 0 {
            return Err(spec_error(format!("`{element}`: period must be ≥ 1")));
        }
        return Ok(FaultTrigger::Every { period, phase });
    }
    if let Some(rest) = token
        .strip_prefix("p=")
        .or_else(|| token.strip_prefix("prob="))
    {
        let (num, den) = rest
            .split_once('/')
            .ok_or_else(|| spec_error(format!("`{element}`: probability must be num/den")))?;
        let num = int(num, "probability numerator")? as u32;
        let den = int(den, "probability denominator")? as u32;
        if den == 0 || num > den {
            return Err(spec_error(format!(
                "`{element}`: probability must satisfy 0 ≤ num/den ≤ 1 with den ≥ 1"
            )));
        }
        return Ok(FaultTrigger::Prob { num, den });
    }
    if let Some(rest) = token.strip_prefix("once=") {
        let at = int(rest, "op index")?;
        if at == 0 {
            return Err(spec_error(format!(
                "`{element}`: op indices are 1-based; once=0 never fires"
            )));
        }
        return Ok(FaultTrigger::Once { at });
    }
    Err(spec_error(format!(
        "`{element}`: unknown trigger `{token}` (expected every=, p=, or once=)"
    )))
}

/// Runtime evaluation state for a [`FaultPlan`]: the plan plus the
/// seeded generator behind its probabilistic triggers.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: SmallRng,
}

impl FaultState {
    /// Creates fresh evaluation state for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SmallRng::seed_from_u64(plan.seed);
        FaultState { plan, rng }
    }

    /// Decides the fault (if any) for the `op`-th transfer (1-based) on
    /// `fd` in direction `dir`. First matching rule that fires wins.
    pub fn decide(&mut self, fd: i64, dir: Direction, op: u64) -> Option<FaultKind> {
        for rule in &self.plan.rules {
            if rule.matches(fd, dir) && rule.trigger.fires(op, &mut self.rng) {
                return Some(rule.kind);
            }
        }
        None
    }
}

/// Counts of injected faults and errno deliveries over one run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Input transfers truncated below the requested length.
    pub short_reads: u64,
    /// Output transfers that accepted fewer cells than offered.
    pub short_writes: u64,
    /// EINTR/EAGAIN failures injected.
    pub transient_errors: u64,
    /// EIO failures delivered (first injection and every retry).
    pub device_failures: u64,
    /// Negative-errno returns delivered to guest registers, from any
    /// cause (injected faults, bad descriptors, closed devices).
    pub errno_returns: u64,
}

impl FaultCounters {
    /// Total injected faults (excluding the errno-delivery tally, which
    /// overlaps the error categories).
    pub fn injected(&self) -> u64 {
        self.short_reads + self.short_writes + self.transient_errors + self.device_failures
    }
}

impl fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "short reads {}, short writes {}, transient {}, device failures {}, errno returns {}",
            self.short_reads,
            self.short_writes,
            self.transient_errors,
            self.device_failures,
            self.errno_returns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_examples() {
        let plan = FaultPlan::parse("fd0:shortread:every=3").unwrap();
        assert_eq!(
            plan.rules,
            vec![FaultRule {
                fd: Some(0),
                class: None,
                kind: FaultKind::ShortRead,
                trigger: FaultTrigger::Every {
                    period: 3,
                    phase: 0
                },
            }]
        );
        let plan = FaultPlan::parse("in:eintr:p=1/8").unwrap();
        assert_eq!(plan.rules[0].class, Some(Direction::Input));
        assert_eq!(plan.rules[0].trigger, FaultTrigger::Prob { num: 1, den: 8 });
        let plan = FaultPlan::parse("seed=42, fd1:eio:once=100").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules[0].fd, Some(1));
        assert_eq!(plan.rules[0].trigger, FaultTrigger::Once { at: 100 });
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let spec = "seed=7,fd0:in:shortread:every=3+1,out:shortwrite:p=1/4,eio:once=9";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.to_string(), spec);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn default_trigger_is_always() {
        let plan = FaultPlan::parse("fd2:eagain").unwrap();
        assert_eq!(
            plan.rules[0].trigger,
            FaultTrigger::Every {
                period: 1,
                phase: 0
            }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "seed=9",
            "fd0",
            "fdx:eio",
            "shortread:bogus=3",
            "eintr:p=3/2",
            "eintr:p=1/0",
            "shortread:every=0",
            "eio:once=0",
            "shortread:eintr",
            "shortread:fd0",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn duplicate_rules_are_rejected_with_a_precise_message() {
        let e = FaultPlan::parse("fd0:eio:once=2,fd0:eio:once=2").unwrap_err();
        assert!(e.message.contains("duplicate rule"), "{e}");
        assert!(e.message.contains("fd0:eio:once=2"), "{e}");
    }

    #[test]
    fn shadowed_rules_are_rejected_with_a_precise_message() {
        // `eio` (no trigger) fires on every operation of every fd, so
        // the later eintr rule can never win.
        let e = FaultPlan::parse("eio,fd0:eintr:once=3").unwrap_err();
        assert!(e.message.contains("can never fire"), "{e}");
        assert!(e.message.contains("eio"), "{e}");
        // An always-true probability shadows the same way.
        let e = FaultPlan::parse("in:eagain:p=4/4,in:eio:every=5").unwrap_err();
        assert!(e.message.contains("can never fire"), "{e}");
    }

    #[test]
    fn narrower_always_firing_rules_do_not_shadow_broader_ones() {
        // fd0:eio always fires but only on fd 0; the eintr rule still
        // applies to every other descriptor.
        let plan = FaultPlan::parse("fd0:eio,eintr:once=3").unwrap();
        assert_eq!(plan.rules.len(), 2);
        let mut s = FaultState::new(plan);
        assert_eq!(s.decide(1, Direction::Input, 3), Some(FaultKind::Eintr));
    }

    #[test]
    fn duplicate_seed_elements_are_rejected() {
        let e = FaultPlan::parse("seed=1,seed=2,eio").unwrap_err();
        assert!(e.message.contains("duplicate seed"), "{e}");
        assert!(e.message.contains("already set to 1"), "{e}");
    }

    /// Seeded-loop property: `parse(plan.to_string()) == plan` for any
    /// plan the grammar accepts, so `--faults` strings round-trip and
    /// are self-documenting.
    #[test]
    fn display_parse_roundtrip_property() {
        let mut rng = SmallRng::seed_from_u64(0xFA017);
        let kinds = [
            FaultKind::ShortRead,
            FaultKind::ShortWrite,
            FaultKind::Eintr,
            FaultKind::Eagain,
            FaultKind::Eio,
        ];
        let mut valid = 0u32;
        for _ in 0..256 {
            let n_rules = 1 + rng.gen_range(0usize..4);
            let rules: Vec<FaultRule> = (0..n_rules)
                .map(|_| FaultRule {
                    fd: rng.gen_ratio(1, 2).then(|| rng.gen_range(0i64..4)),
                    class: match rng.gen_range(0u32..3) {
                        0 => None,
                        1 => Some(Direction::Input),
                        _ => Some(Direction::Output),
                    },
                    kind: kinds[rng.gen_range(0usize..kinds.len())],
                    trigger: match rng.gen_range(0u32..3) {
                        0 => FaultTrigger::Every {
                            period: 1 + rng.gen_range(0u64..5),
                            phase: rng.gen_range(0u64..3),
                        },
                        1 => {
                            let den = 1 + rng.gen_range(0u64..8) as u32;
                            FaultTrigger::Prob {
                                num: rng.gen_range(0u64..=den as u64) as u32,
                                den,
                            }
                        }
                        _ => FaultTrigger::Once {
                            at: 1 + rng.gen_range(0u64..100),
                        },
                    },
                })
                .collect();
            let plan = FaultPlan {
                seed: rng.gen_range(0u64..1_000_000),
                rules,
            };
            match FaultPlan::parse(&plan.to_string()) {
                Ok(parsed) => {
                    assert_eq!(parsed, plan, "roundtrip of `{plan}`");
                    valid += 1;
                }
                Err(e) => {
                    // Randomly generated plans may contain duplicate or
                    // shadowed rules; the parser must say so precisely.
                    assert!(
                        e.message.contains("duplicate") || e.message.contains("can never fire"),
                        "unexpected rejection of `{plan}`: {e}"
                    );
                }
            }
        }
        assert!(valid > 128, "most generated plans are valid ({valid}/256)");
    }

    #[test]
    fn every_trigger_fires_on_schedule() {
        let mut rng = SmallRng::seed_from_u64(0);
        let t = FaultTrigger::Every {
            period: 3,
            phase: 0,
        };
        let fired: Vec<u64> = (1..=9).filter(|&op| t.fires(op, &mut rng)).collect();
        assert_eq!(fired, vec![3, 6, 9]);
        let t = FaultTrigger::Every {
            period: 3,
            phase: 1,
        };
        let fired: Vec<u64> = (1..=9).filter(|&op| t.fires(op, &mut rng)).collect();
        assert_eq!(fired, vec![1, 4, 7]);
    }

    #[test]
    fn once_trigger_fires_exactly_once() {
        let mut rng = SmallRng::seed_from_u64(0);
        let t = FaultTrigger::Once { at: 4 };
        let fired: Vec<u64> = (1..=8).filter(|&op| t.fires(op, &mut rng)).collect();
        assert_eq!(fired, vec![4]);
    }

    #[test]
    fn prob_trigger_is_seed_deterministic() {
        let plan = FaultPlan::parse("seed=5,in:eintr:p=1/3").unwrap();
        let run = |mut s: FaultState| -> Vec<bool> {
            (1..=32)
                .map(|op| s.decide(0, Direction::Input, op).is_some())
                .collect()
        };
        let a = run(FaultState::new(plan.clone()));
        let b = run(FaultState::new(plan.clone()));
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
        let other = FaultPlan::parse("seed=6,in:eintr:p=1/3").unwrap();
        assert_ne!(run(FaultState::new(other)), a, "different seed diverges");
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::parse("fd0:eintr:once=2,eio").unwrap();
        let mut s = FaultState::new(plan);
        assert_eq!(s.decide(0, Direction::Input, 2), Some(FaultKind::Eintr));
        assert_eq!(s.decide(0, Direction::Input, 3), Some(FaultKind::Eio));
        assert_eq!(s.decide(1, Direction::Output, 1), Some(FaultKind::Eio));
    }

    #[test]
    fn selectors_restrict_matching() {
        let plan = FaultPlan::parse("fd1:out:shortwrite").unwrap();
        let mut s = FaultState::new(plan);
        assert_eq!(
            s.decide(1, Direction::Output, 1),
            Some(FaultKind::ShortWrite)
        );
        assert_eq!(s.decide(1, Direction::Input, 1), None);
        assert_eq!(s.decide(0, Direction::Output, 1), None);
    }
}
