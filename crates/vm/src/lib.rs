//! A multi-threaded guest virtual machine with instrumentation hooks —
//! the simulated dynamic-binary-instrumentation substrate of the `drms`
//! workspace.
//!
//! The original system is a Valgrind tool; this crate replaces the DBI
//! layer with a small, fully observable execution substrate that preserves
//! the properties the profiling algorithms depend on:
//!
//! * **Serializing scheduler.** One guest thread runs at a time (as under
//!   Valgrind); a [`SchedPolicy`] hands out quanta measured in basic
//!   blocks, so different policies produce different interleavings.
//! * **Complete event stream.** Every call, return, memory access, kernel
//!   transfer, synchronization operation and thread switch is delivered to
//!   an attached [`Tool`] in one total order.
//! * **Kernel model.** Guest threads exchange data with external devices
//!   only through POSIX-flavoured system calls, mapped to `kernelToUser` /
//!   `userToKernel` events exactly as the paper's syscall wrappers do.
//! * **Basic-block costs.** The cost measure is executed basic blocks, the
//!   paper's metric; a simulated-nanoseconds mode adds timer-like noise.
//!
//! # Quick start
//!
//! ```
//! use drms_vm::{ProgramBuilder, run_program, RunConfig, NullTool};
//!
//! let mut pb = ProgramBuilder::new();
//! let main = pb.declare("main", 0);
//! pb.define(main, |f| {
//!     let acc = f.copy(0);
//!     f.for_range(0, 10, |f, i| {
//!         let s = f.add(acc, i);
//!         f.assign(acc, s);
//!     });
//!     f.ret(None);
//! });
//! let program = pb.finish(main).unwrap();
//! let stats = run_program(&program, RunConfig::default(), &mut NullTool::default()).unwrap();
//! assert!(stats.basic_blocks > 10);
//! ```

pub mod batch;
pub mod builder;
pub mod decode;
pub mod disasm;
pub mod fault;
pub mod interp;
pub mod ir;
pub mod kernel;
pub mod memory;
pub mod recorder;
pub mod rng;
pub mod sched;
pub mod shadow;
pub mod shard_tool;
pub mod stats;
pub mod tool;

pub use batch::{BatchKind, EventBatch};
pub use builder::{BuildError, FnBuilder, ProgramBuilder};
pub use decode::{DecodeStats, DecodedProgram};
pub use disasm::{disassemble, routine_listing};
pub use fault::{FaultCounters, FaultKind, FaultPlan, FaultRule, FaultSpecError, FaultTrigger};
pub use interp::{run_program, run_program_with, BlockedThread, RunError, Vm, WaitTarget};
pub use ir::{BinOp, Block, Inst, Operand, Program, Reg, Routine, Terminator, ValidateError};
pub use kernel::{Device, Direction, Kernel, KernelError, Syscall, SyscallNo, TransferCounters};
pub use memory::Memory;
pub use recorder::TraceRecorder;
pub use rng::SmallRng;
pub use shadow::ShadowCacheStats;
pub use shadow::ShadowMemory;
pub use shard_tool::{replay_shards_into, ShardRecorder};
pub use stats::{CostKind, DecodeMode, EventCounters, RunConfig, RunStats, SchedPolicy};
pub use tool::{MultiTool, NullTool, Tool};

// Schedule model re-exports, so VM users need not depend on the trace
// crate directly to record or replay schedules.
pub use drms_trace::sched::{PreemptCause, SchedDecision};
pub use drms_trace::Schedule;
