//! Recording executions as per-thread traces.
//!
//! [`TraceRecorder`] is a [`Tool`] that captures the instrumentation event
//! stream into per-thread [`ThreadTrace`]s, timestamped in global emission
//! order. Merging the recorded traces and replaying them reproduces the
//! online event stream exactly (modulo redundant thread-switch
//! notifications, which carry no information) — the equivalence the
//! paper's offline trace-merging formulation relies on.

use crate::tool::Tool;
use drms_trace::{Addr, BlockId, Event, EventSink, RoutineId, SyncOp, ThreadId, ThreadTrace};

/// A tool that records every event into per-thread traces.
///
/// # Example
/// ```
/// use drms_vm::{ProgramBuilder, run_program, RunConfig, TraceRecorder};
/// use drms_trace::merge_traces;
///
/// let mut pb = ProgramBuilder::new();
/// let main = pb.declare("main", 0);
/// pb.define(main, |f| { let _ = f.add(1, 1); f.ret(None); });
/// let program = pb.finish(main).unwrap();
/// let mut rec = TraceRecorder::new();
/// run_program(&program, RunConfig::default(), &mut rec).unwrap();
/// let merged = merge_traces(rec.into_traces());
/// assert!(!merged.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct TraceRecorder {
    traces: Vec<ThreadTrace>,
    last_cost: Vec<u64>,
    clock: u64,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The traces recorded so far, indexed by thread id.
    pub fn traces(&self) -> &[ThreadTrace] {
        &self.traces
    }

    /// Consumes the recorder, yielding its per-thread traces.
    pub fn into_traces(self) -> Vec<ThreadTrace> {
        self.traces
    }

    /// Total recorded events across all threads.
    pub fn event_count(&self) -> usize {
        self.traces.iter().map(ThreadTrace::len).sum()
    }

    fn record(&mut self, thread: ThreadId, cost: Option<u64>, event: Event) {
        let idx = thread.index() as usize;
        while self.traces.len() <= idx {
            self.traces
                .push(ThreadTrace::new(ThreadId::new(self.traces.len() as u32)));
            self.last_cost.push(0);
        }
        // Events without an intrinsic cost (memory accesses, sync ops)
        // carry the thread's last known cumulative cost, keeping each
        // per-thread trace's cost column monotone.
        let cost = match cost {
            Some(c) => {
                self.last_cost[idx] = c;
                c
            }
            None => self.last_cost[idx],
        };
        self.clock += 1;
        self.traces[idx].push(self.clock, cost, event);
    }
}

impl EventSink for TraceRecorder {
    fn on_thread_start(&mut self, thread: ThreadId, parent: Option<ThreadId>) {
        self.record(thread, Some(0), Event::ThreadStart { parent });
    }
    fn on_thread_exit(&mut self, thread: ThreadId, cost: u64) {
        self.record(thread, Some(cost), Event::ThreadExit);
    }
    fn on_call(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        self.record(thread, Some(cost), Event::Call { routine });
    }
    fn on_return(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        self.record(thread, Some(cost), Event::Return { routine });
    }
    fn on_read(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.record(thread, None, Event::Read { addr, len });
    }
    fn on_write(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.record(thread, None, Event::Write { addr, len });
    }
    fn on_user_to_kernel(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.record(thread, None, Event::UserToKernel { addr, len });
    }
    fn on_kernel_to_user(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.record(thread, None, Event::KernelToUser { addr, len });
    }
    fn on_sync(&mut self, thread: ThreadId, op: SyncOp) {
        self.record(thread, None, Event::Sync { op });
    }
    fn on_block(&mut self, thread: ThreadId, routine: RoutineId, block: BlockId) {
        self.record(thread, None, Event::Block { routine, block });
    }
}

impl Tool for TraceRecorder {
    fn name(&self) -> &str {
        "trace-recorder"
    }

    fn shadow_bytes(&self) -> u64 {
        self.traces
            .iter()
            .map(|t| (t.len() * std::mem::size_of::<drms_trace::TimedEvent>()) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::interp::run_program;
    use crate::stats::RunConfig;
    use drms_trace::merge_traces;

    #[test]
    fn records_monotone_valid_traces() {
        let mut pb = ProgramBuilder::new();
        let worker = pb.function("worker", 0, |f| {
            let buf = f.alloc(4);
            f.store(buf, 0, 1);
            let _ = f.load(buf, 0);
            f.ret(None);
        });
        let main = pb.function("main", 0, |f| {
            let t = f.spawn(worker, &[]);
            f.join(t);
            f.ret(None);
        });
        let program = pb.finish(main).unwrap();
        let mut rec = TraceRecorder::new();
        run_program(&program, RunConfig::default(), &mut rec).unwrap();
        assert_eq!(rec.traces().len(), 2);
        for t in rec.traces() {
            t.validate().expect("well-formed per-thread trace");
        }
        assert!(rec.event_count() > 6);
        assert!(rec.shadow_bytes() > 0);
        let merged = merge_traces(rec.into_traces());
        // Strictly increasing global clock means the merge is unambiguous.
        assert!(merged.windows(2).all(|w| w[0].time < w[1].time));
    }
}
