//! The guest interpreter: a serializing multi-threaded virtual machine.
//!
//! Like Valgrind, the VM executes one guest thread at a time; a scheduling
//! policy hands out quanta (measured in basic blocks) to runnable threads.
//! Every observable operation — call, return, memory access, kernel
//! transfer, synchronization, thread switch — is delivered to the attached
//! [`Tool`] in a single total order, which is exactly the merged trace the
//! paper's profiling algorithm consumes.

use crate::batch::{BatchKind, EventBatch};
use crate::decode::{BinHalf, DecodedOp, DecodedProgram};
use crate::ir::{Inst, Operand, Program, Reg, Terminator, ValidateError};
use crate::kernel::{Direction, Kernel, KernelError, Syscall};
use crate::memory::Memory;
use crate::rng::SmallRng;
use crate::sched::{Scheduler, StepKind, SLICE_STEP_BOUNDS};
use crate::shadow::ADDRESS_LIMIT;
use crate::stats::{CostKind, DecodeMode, RunConfig, RunStats, SchedPolicy};
use crate::tool::Tool;
use drms_trace::sched::PreemptCause;
use drms_trace::{Addr, BlockId, Histogram, Metrics, RoutineId, Schedule, SyncOp, ThreadId};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// The resource a blocked thread is waiting on — one node of the
/// wait-graph reported by [`RunError::Deadlock`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WaitTarget {
    /// Waiting for a semaphore to be signalled.
    Semaphore(u32),
    /// Waiting to acquire a mutex, held by `owner` (if anyone).
    Mutex { mutex: u32, owner: Option<ThreadId> },
    /// Waiting on a condition variable.
    Condvar(u32),
    /// Waiting for the given thread to exit.
    Join(ThreadId),
}

impl fmt::Display for WaitTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitTarget::Semaphore(s) => write!(f, "semaphore {s}"),
            WaitTarget::Mutex {
                mutex,
                owner: Some(o),
            } => write!(f, "mutex {mutex} (held by {o})"),
            WaitTarget::Mutex { mutex, owner: None } => write!(f, "mutex {mutex} (unowned)"),
            WaitTarget::Condvar(c) => write!(f, "condvar {c}"),
            WaitTarget::Join(t) => write!(f, "join of {t}"),
        }
    }
}

/// One entry of the deadlock wait-graph: a thread and the resource it
/// is blocked on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlockedThread {
    /// The blocked thread.
    pub thread: ThreadId,
    /// What it is waiting on.
    pub waiting_on: WaitTarget,
}

impl fmt::Display for BlockedThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} waiting on {}", self.thread, self.waiting_on)
    }
}

/// Errors aborting a guest execution.
///
/// Kernel I/O failures are *not* run errors: the VM delivers them to
/// the guest as negative errno values, like real syscalls (see
/// [`KernelError::errno`]). When [`Vm::run`] does return an error, the
/// statistics gathered so far remain available via [`Vm::stats`] and
/// the attached tool's `on_finish` hook has run, so partial profiles
/// survive the abort.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// The program failed structural validation.
    Validate(ValidateError),
    /// All live threads are blocked; `blocked` is the per-thread
    /// wait-graph naming the resource each one waits on.
    Deadlock { blocked: Vec<BlockedThread> },
    /// The watchdog instruction budget was exhausted.
    InstructionLimit { limit: u64 },
    /// The wall-clock deadline ([`RunConfig::deadline`]) was exceeded.
    /// Carries the configured budget in milliseconds — never the
    /// elapsed time — so the abort message is deterministic.
    DeadlineExceeded { millis: u64 },
    /// Integer division or remainder by zero.
    DivisionByZero { routine: RoutineId },
    /// A memory access targeted a non-positive or out-of-range address.
    BadAddress { value: i64 },
    /// A thread's frame stack was empty where a live frame was
    /// required — a malformed guest program, reported instead of
    /// panicking.
    CorruptStack { thread: ThreadId },
    /// A thread unlocked (or cond-waited on) a mutex it does not hold.
    MutexNotOwned { mutex: u32, thread: ThreadId },
    /// A thread re-locked a mutex it already holds.
    MutexReentry { mutex: u32, thread: ThreadId },
    /// `Join` on a value that is not a thread id.
    BadThreadId { value: i64 },
    /// The policy is [`SchedPolicy::Replay`] but
    /// [`RunConfig::replay`] holds no schedule.
    ScheduleMissing,
    /// A strict replay could not honor the recorded schedule: the guest
    /// behaved differently from the recording run (e.g. a different
    /// program, config, or fault plan was supplied).
    ScheduleDiverged {
        /// Index of the recorded decision that could not be honored.
        slice: usize,
        /// What differed.
        reason: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Validate(e) => write!(f, "invalid program: {e}"),
            RunError::Deadlock { blocked } => {
                write!(f, "deadlock: {} thread(s) blocked forever", blocked.len())?;
                for (i, b) in blocked.iter().enumerate() {
                    write!(f, "{} {b}", if i == 0 { ":" } else { ";" })?;
                }
                Ok(())
            }
            RunError::InstructionLimit { limit } => {
                write!(f, "instruction budget of {limit} exhausted")
            }
            RunError::DeadlineExceeded { millis } => {
                write!(f, "wall-clock deadline of {millis} ms exceeded")
            }
            RunError::DivisionByZero { routine } => {
                write!(f, "division by zero in routine {routine}")
            }
            RunError::BadAddress { value } => write!(f, "bad memory address {value}"),
            RunError::CorruptStack { thread } => {
                write!(f, "{thread} has no live frame (corrupt guest stack)")
            }
            RunError::MutexNotOwned { mutex, thread } => {
                write!(f, "{thread} released mutex {mutex} it does not hold")
            }
            RunError::MutexReentry { mutex, thread } => {
                write!(f, "{thread} re-locked mutex {mutex} it already holds")
            }
            RunError::BadThreadId { value } => write!(f, "bad thread id {value}"),
            RunError::ScheduleMissing => {
                write!(f, "replay policy selected but no schedule was provided")
            }
            RunError::ScheduleDiverged { slice, reason } => {
                write!(f, "replay diverged at schedule slice {slice}: {reason}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Validate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for RunError {
    fn from(e: ValidateError) -> Self {
        RunError::Validate(e)
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    Blocked,
    Exited,
}

#[derive(Debug)]
struct Frame {
    routine: RoutineId,
    block: usize,
    ip: usize,
    regs: Vec<i64>,
    ret_dst: Option<Reg>,
    /// The frame was created but its entry block not yet entered/counted.
    pending_entry: bool,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Resume {
    /// Woken from a condition wait; must re-acquire this mutex.
    ReacquireMutex(u32),
}

struct ThreadCtx {
    id: ThreadId,
    frames: Vec<Frame>,
    state: ThreadState,
    blocks: u64,
    nanos: u64,
    rng: SmallRng,
    jitter: SmallRng,
    resume: Option<Resume>,
    join_waiters: Vec<usize>,
    /// Set while `state == Blocked`: the wait-graph edge for deadlock
    /// diagnostics.
    waiting_on: Option<WaitTarget>,
}

struct Semaphore {
    value: i64,
    waiters: VecDeque<usize>,
}

struct Mutex {
    owner: Option<usize>,
    waiters: VecDeque<usize>,
}

#[derive(Default)]
struct Cond {
    waiters: VecDeque<usize>,
}

enum Step {
    /// Instruction executed, same basic block.
    Continue,
    /// Control entered a (new) basic block.
    BlockEntered,
    /// A synchronization operation completed without blocking — a
    /// potential chaos preemption point.
    Synced,
    /// A kernel transfer (syscall) executed — a potential chaos
    /// preemption point.
    Kernel,
    /// The thread blocked; the instruction will re-execute on wake.
    Blocked,
    /// The thread voluntarily ended its quantum.
    Yielded,
    /// The thread exited.
    Exited,
}

impl Step {
    fn kind(&self) -> StepKind {
        match self {
            Step::BlockEntered => StepKind::Block,
            Step::Synced => StepKind::Sync,
            Step::Kernel => StepKind::Kernel,
            Step::Continue | Step::Blocked | Step::Yielded | Step::Exited => StepKind::Plain,
        }
    }
}

/// A guest virtual machine ready to execute one program.
///
/// # Example
/// ```
/// use drms_vm::{ProgramBuilder, Vm, RunConfig, NullTool};
///
/// let mut pb = ProgramBuilder::new();
/// let main = pb.declare("main", 0);
/// pb.define(main, |f| { let _ = f.add(1, 2); f.ret(None); });
/// let program = pb.finish(main).unwrap();
/// let mut vm = Vm::new(&program, RunConfig::default()).unwrap();
/// let stats = vm.run(&mut NullTool::default()).unwrap();
/// assert!(stats.basic_blocks >= 1);
/// ```
pub struct Vm<'p> {
    program: &'p Program,
    /// Pre-decoded image of `program`, present whenever
    /// `config.decode != DecodeMode::Off`. Behind an [`Arc`] so the
    /// sweep shares one decode across grid cells and so the dispatch
    /// loop can untie the decoded-op borrow from `&mut self`.
    decoded: Option<Arc<DecodedProgram>>,
    /// Buffered read/write events awaiting delivery via
    /// [`Tool::observe_batch`]. Always flushed before any other tool
    /// callback, so delivery order matches per-event dispatch exactly.
    batch: EventBatch,
    config: RunConfig,
    mem: Memory,
    kernel: Kernel,
    threads: Vec<ThreadCtx>,
    sems: Vec<Semaphore>,
    mutexes: Vec<Mutex>,
    conds: Vec<Cond>,
    stats: RunStats,
    sched: Scheduler,
    /// Reusable staging buffer for syscall transfers: kernel data on its
    /// way into guest memory (input) or the loaded user buffer on its way
    /// to a device (output). Cleared before each use, so steady-state
    /// transfers allocate nothing.
    scratch: Vec<i64>,
    /// Reusable buffer for evaluating call/spawn arguments, so argument
    /// passing allocates nothing in steady state.
    call_scratch: Vec<i64>,
    /// Recycled call frames: a `Ret` parks its popped frame here and the
    /// next `Call` reuses it (register vector capacity included), so a
    /// call/return cycle at steady depth performs no heap traffic.
    frame_pool: Vec<Frame>,
    /// Per-transfer cell counts bucketed by [`TRANSFER_CELL_BOUNDS`]
    /// (last slot is the overflow bucket) plus their running sum —
    /// the raw data of the `kernel.transfer.cells` histogram.
    transfer_buckets: [u64; 8],
    transfer_cells_sum: u64,
}

/// Histogram bucket bounds for cells moved per completed kernel
/// transfer (`kernel.transfer.cells` in the metrics registry).
pub const TRANSFER_CELL_BOUNDS: [u64; 7] = [1, 4, 16, 64, 256, 1024, 4096];

impl<'p> Vm<'p> {
    /// Creates a VM for `program` under `config`, validating the program
    /// and loading its globals.
    ///
    /// # Errors
    /// Returns [`RunError::Validate`] if the program is malformed.
    pub fn new(program: &'p Program, config: RunConfig) -> Result<Self, RunError> {
        Self::build(program, config, None)
    }

    /// Like [`Vm::new`], but reuses a shared pre-decoded image instead
    /// of decoding again — the sweep decodes each `(family, size)`
    /// program once and hands the [`Arc`] to every attempt/run of that
    /// cell. Ignored (the reference interpreter runs) when
    /// `config.decode` is [`DecodeMode::Off`].
    ///
    /// # Panics
    /// Panics if `decoded` does not structurally match `program` — a
    /// harness bug, not a guest error.
    ///
    /// # Errors
    /// Returns [`RunError::Validate`] if the program is malformed.
    pub fn with_decoded(
        program: &'p Program,
        config: RunConfig,
        decoded: Arc<DecodedProgram>,
    ) -> Result<Self, RunError> {
        assert!(
            decoded.matches(program),
            "shared DecodedProgram does not match the program being run"
        );
        Self::build(program, config, Some(decoded))
    }

    fn build(
        program: &'p Program,
        config: RunConfig,
        shared: Option<Arc<DecodedProgram>>,
    ) -> Result<Self, RunError> {
        program.validate()?;
        let decoded = match config.decode {
            DecodeMode::Off => None,
            mode => Some(shared.unwrap_or_else(|| DecodedProgram::decode(program, mode))),
        };
        let batch = EventBatch::with_capacity(config.event_batch);
        let mut mem = Memory::new(program.heap_base());
        for (base, data) in program.globals() {
            mem.store_slice(*base, data);
        }
        let mut kernel = Kernel::with_devices(config.devices.clone());
        if let Some(plan) = &config.faults {
            kernel.set_fault_plan(plan.clone());
        }
        let sems = program
            .semaphores()
            .iter()
            .map(|&v| Semaphore {
                value: v,
                waiters: VecDeque::new(),
            })
            .collect();
        let mutexes = (0..program.mutex_count())
            .map(|_| Mutex {
                owner: None,
                waiters: VecDeque::new(),
            })
            .collect();
        let conds = (0..program.cond_count()).map(|_| Cond::default()).collect();
        let sched = Scheduler::new(&config)?;
        Ok(Vm {
            program,
            decoded,
            batch,
            config,
            mem,
            kernel,
            threads: Vec::new(),
            sems,
            mutexes,
            conds,
            stats: RunStats::default(),
            sched,
            scratch: Vec::new(),
            call_scratch: Vec::new(),
            frame_pool: Vec::new(),
            transfer_buckets: [0; 8],
            transfer_cells_sum: 0,
        })
    }

    /// Direct access to guest memory (for harnesses inspecting results).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The pre-decoded image this VM dispatches from, when decoding is
    /// on. Clone the [`Arc`] to share it with further VMs over the same
    /// program ([`Vm::with_decoded`]).
    pub fn decoded(&self) -> Option<&Arc<DecodedProgram>> {
        self.decoded.as_ref()
    }

    /// Replaces the internal event batch with `batch` — cleared and
    /// grown to the configured capacity — so a sweep worker reuses one
    /// allocation across every run it executes. Recover the buffer
    /// afterwards with [`Vm::take_batch`]; its
    /// [`allocations`](EventBatch::allocations) counter survives the
    /// round-trip, which is how the reuse test proves no per-cell
    /// reallocation happens.
    pub fn install_batch(&mut self, mut batch: EventBatch) {
        batch.clear();
        batch.ensure_capacity(self.config.event_batch);
        self.batch = batch;
    }

    /// Takes the event batch back out of the VM (leaving a minimal
    /// replacement), for reuse by the next run.
    pub fn take_batch(&mut self) -> EventBatch {
        std::mem::take(&mut self.batch)
    }

    /// Direct access to the kernel (device counters etc.).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Statistics gathered so far. After [`Vm::run`] returns — even
    /// with an error — these are finalized, so aborted runs still
    /// expose instruction, block and fault counts.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Folds the run's execution counters into a fresh observability
    /// registry: event tallies by kind, per-thread block and cost
    /// counts, scheduler slices by preemption cause, kernel transfer
    /// traffic, and fault-injection counters. Deterministic — no
    /// wall-clock, no addresses — so the same program + seed + schedule
    /// yields a byte-identical [`Metrics::to_json`].
    ///
    /// Call after [`Vm::run`]; mid-run the registry reflects progress
    /// so far (the hot loop only bumps plain integer fields, the
    /// registry is built here). [`Metrics::audit`] passes on the
    /// result by construction unless the VM's own accounting is buggy
    /// — which is exactly what the audit exists to catch.
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        m.add("vm.instructions", self.stats.instructions);
        m.add("vm.basic_blocks", self.stats.basic_blocks);
        m.add("vm.thread_switches", self.stats.thread_switches);
        m.add("vm.syscalls", self.stats.syscalls);
        m.add("vm.events.total", self.stats.events);
        for (kind, count) in self.stats.events_by_kind.by_kind() {
            m.add(format!("vm.events.{kind}"), count);
        }
        let mut cost_total = 0;
        for (t, &blocks) in self.stats.per_thread_blocks.iter().enumerate() {
            m.add(format!("vm.blocks.thread.{t}"), blocks);
            let cost = self.stats.thread_cost(t, self.config.cost);
            m.add(format!("vm.cost.thread.{t}"), cost);
            cost_total += cost;
        }
        m.add("vm.cost.total", cost_total);
        m.set_gauge("vm.threads", u64::from(self.stats.threads));
        m.set_gauge("vm.guest_pages", self.stats.guest_pages);
        m.set_gauge("vm.guest_bytes", self.stats.guest_bytes);

        let sc = self.sched.counters();
        m.add("sched.slices", sc.slices);
        for cause in PreemptCause::ALL {
            m.add(
                format!("sched.preempt.{}", cause.metric_name()),
                sc.by_cause[cause.index()],
            );
        }
        let mut steps = Histogram::new(&SLICE_STEP_BOUNDS);
        steps.counts = sc.step_buckets.to_vec();
        steps.total = sc.slices;
        steps.sum = sc.step_sum;
        m.merge_histogram("sched.slice.steps", &steps)
            .expect("one bucket layout per histogram name");

        let tc = self.kernel.transfer_counters();
        m.add("kernel.transfers", tc.transfers);
        m.add("kernel.cells_in", tc.cells_in);
        m.add("kernel.cells_out", tc.cells_out);
        let mut cells = Histogram::new(&TRANSFER_CELL_BOUNDS);
        cells.counts = self.transfer_buckets.to_vec();
        cells.total = self.transfer_buckets.iter().sum();
        cells.sum = self.transfer_cells_sum;
        m.merge_histogram("kernel.transfer.cells", &cells)
            .expect("one bucket layout per histogram name");

        let f = self.kernel.fault_counters();
        m.add("faults.short_reads", f.short_reads);
        m.add("faults.short_writes", f.short_writes);
        m.add("faults.transient_errors", f.transient_errors);
        m.add("faults.device_failures", f.device_failures);
        m.add("faults.errno_returns", f.errno_returns);
        m
    }

    /// Runs the program to completion, delivering all instrumentation
    /// events to `tool`, and returns execution statistics.
    ///
    /// The generic parameter lets a statically-known no-op tool compile to
    /// an essentially uninstrumented ("native") run, while `&mut dyn Tool`
    /// models a dynamically dispatched tool plugin.
    ///
    /// The run degrades gracefully on failure: whatever the outcome,
    /// statistics are finalized (available via [`Vm::stats`]) and the
    /// tool's `on_finish` hook runs, so a profiler attached to an
    /// aborted guest still holds a valid partial profile.
    ///
    /// # Errors
    /// Any [`RunError`] raised by the guest (deadlock, bad address,
    /// watchdog budget, corrupt stack, …). Kernel I/O failures are not
    /// errors here; they surface inside the guest as negative errno
    /// register values.
    pub fn run<T: Tool + ?Sized>(&mut self, tool: &mut T) -> Result<RunStats, RunError> {
        let started = std::time::Instant::now();
        // Replay must honor recorded slices that can end after any step
        // count, which only the reference stepper models; replay is the
        // correctness path, not the hot path.
        let use_decoded =
            self.decoded.is_some() && !matches!(self.config.policy, SchedPolicy::Replay { .. });
        let result = if use_decoded {
            self.run_inner_decoded(tool, started)
        } else {
            self.run_inner(tool, started)
        };
        if result.is_err() {
            // Flush the in-progress slice so a recorded failing run
            // replays to the same failure point.
            self.sched.abort_slice();
        }
        // Deliver any reads/writes buffered up to an abort before the
        // tool finalizes — partial profiles must see the full stream.
        self.flush_batch(tool);
        self.stats.guest_pages = self.mem.page_count() as u64;
        self.stats.guest_bytes = self.mem.backing_bytes();
        self.stats.threads = self.threads.len() as u32;
        self.stats.per_thread_blocks = self.threads.iter().map(|t| t.blocks).collect();
        self.stats.per_thread_nanos = self.threads.iter().map(|t| t.nanos).collect();
        self.stats.basic_blocks = self.stats.per_thread_blocks.iter().sum();
        self.stats.faults = self.kernel.fault_counters();
        // `events` is derived, not counted: every emission site bumps
        // exactly one (or, for spawn, two) of the per-kind counters, so
        // the total is their sum — one fewer read-modify-write per event
        // on the hot path.
        self.stats.events = self.stats.events_by_kind.total();
        tool.on_finish();
        result.map(|()| self.stats.clone())
    }

    fn run_inner<T: Tool + ?Sized>(
        &mut self,
        tool: &mut T,
        started: std::time::Instant,
    ) -> Result<(), RunError> {
        self.spawn_thread(self.program.main(), Vec::new(), None, tool);
        let mut current: Option<usize> = None;
        let mut runnable: Vec<bool> = Vec::new();
        loop {
            // Wall-clock watchdog: checked once per slice so the hot
            // instruction loop never reads the clock. A slice is bounded
            // by the quantum, which bounds how late the abort can fire.
            if let Some(deadline) = self.config.deadline {
                if started.elapsed() >= deadline {
                    return Err(RunError::DeadlineExceeded {
                        millis: deadline.as_millis() as u64,
                    });
                }
            }
            runnable.clear();
            runnable.extend(
                self.threads
                    .iter()
                    .map(|t| t.state == ThreadState::Runnable),
            );
            let Some(next) = self.sched.pick(&runnable)? else {
                if self.threads.iter().all(|t| t.state == ThreadState::Exited) {
                    return Ok(());
                }
                return Err(RunError::Deadlock {
                    blocked: self.wait_graph(),
                });
            };
            if current != Some(next) {
                if current.is_some() {
                    self.stats.thread_switches += 1;
                }
                self.stats.events_by_kind.thread_switch += 1;
                tool.on_thread_switch(current.map(|i| self.threads[i].id), self.threads[next].id);
                current = Some(next);
            }
            self.sched.begin_slice(next);
            loop {
                if self.stats.instructions >= self.config.max_instructions {
                    // Watchdog: terminate gracefully rather than spin
                    // forever; the caller still gets finalized stats
                    // and a flushable partial profile.
                    return Err(RunError::InstructionLimit {
                        limit: self.config.max_instructions,
                    });
                }
                let step = self.step(next, tool)?;
                let forced = self.sched.note_step(step.kind());
                // Natural slice ends take precedence over any forced
                // preemption landing on the same step.
                match step {
                    Step::Blocked => {
                        self.sched.end_slice(PreemptCause::Block)?;
                        break;
                    }
                    Step::Yielded => {
                        self.sched.end_slice(PreemptCause::Yield)?;
                        break;
                    }
                    Step::Exited => {
                        self.sched.end_slice(PreemptCause::Exit)?;
                        break;
                    }
                    Step::Continue | Step::BlockEntered | Step::Synced | Step::Kernel => {
                        if let Some(cause) = forced {
                            self.sched.end_slice(cause)?;
                            break;
                        }
                    }
                }
            }
        }
    }

    /// The decoded twin of [`Vm::run_inner`]: identical scheduling
    /// structure, but each "step" the scheduler sees may stand for a
    /// whole run of plain instructions executed by [`Vm::step_decoded`]
    /// (bulk-accounted via `note_plain_steps`, which is sound because a
    /// plain step can never preempt on its own).
    fn run_inner_decoded<T: Tool + ?Sized>(
        &mut self,
        tool: &mut T,
        started: std::time::Instant,
    ) -> Result<(), RunError> {
        let decoded = Arc::clone(
            self.decoded
                .as_ref()
                .expect("decoded dispatch requires a decoded program"),
        );
        self.spawn_thread(self.program.main(), Vec::new(), None, tool);
        let mut current: Option<usize> = None;
        let mut runnable: Vec<bool> = Vec::new();
        loop {
            if let Some(deadline) = self.config.deadline {
                if started.elapsed() >= deadline {
                    return Err(RunError::DeadlineExceeded {
                        millis: deadline.as_millis() as u64,
                    });
                }
            }
            runnable.clear();
            runnable.extend(
                self.threads
                    .iter()
                    .map(|t| t.state == ThreadState::Runnable),
            );
            let Some(next) = self.sched.pick(&runnable)? else {
                if self.threads.iter().all(|t| t.state == ThreadState::Exited) {
                    return Ok(());
                }
                return Err(RunError::Deadlock {
                    blocked: self.wait_graph(),
                });
            };
            if current != Some(next) {
                if current.is_some() {
                    self.stats.thread_switches += 1;
                }
                self.stats.events_by_kind.thread_switch += 1;
                self.flush_batch(tool);
                tool.on_thread_switch(current.map(|i| self.threads[i].id), self.threads[next].id);
                current = Some(next);
            }
            self.sched.begin_slice(next);
            loop {
                // The per-instruction budget checks live inside
                // step_decoded, before every constituent it executes.
                let step = self.step_decoded(next, &decoded, tool)?;
                let forced = self.sched.note_step(step.kind());
                match step {
                    Step::Blocked => {
                        self.sched.end_slice(PreemptCause::Block)?;
                        break;
                    }
                    Step::Yielded => {
                        self.sched.end_slice(PreemptCause::Yield)?;
                        break;
                    }
                    Step::Exited => {
                        self.sched.end_slice(PreemptCause::Exit)?;
                        break;
                    }
                    Step::Continue | Step::BlockEntered | Step::Synced | Step::Kernel => {
                        if let Some(cause) = forced {
                            self.sched.end_slice(cause)?;
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Executes decoded ops of thread `t` until the current basic block
    /// ends (terminator), a slow op needs the reference path, or an
    /// error aborts the run — then performs that final step and returns
    /// it. Every plain constituent executed along the way is accounted
    /// exactly as the reference stepper would: budget check first, then
    /// `stats.instructions += 1`, then effects; read/write events are
    /// buffered into the batch (tallied in `stats` at emission time)
    /// and flushed before any other tool callback.
    fn step_decoded<T: Tool + ?Sized>(
        &mut self,
        t: usize,
        decoded: &DecodedProgram,
        tool: &mut T,
    ) -> Result<Step, RunError> {
        if self.stats.instructions >= self.config.max_instructions {
            return Err(RunError::InstructionLimit {
                limit: self.config.max_instructions,
            });
        }
        let (pending, routine_id, block_idx) = {
            let frame = self.frame(t)?;
            (frame.pending_entry, frame.routine, frame.block)
        };
        if pending {
            self.enter_block(t, block_idx, tool)?;
            return Ok(Step::BlockEntered);
        }
        let mut block_idx = block_idx;
        let droutine = decoded.routine(routine_id);
        let mut dblock = &droutine.blocks[block_idx];
        let mut ops = &dblock.ops[..];

        // Split borrows: the plain-op loop touches disjoint parts of the
        // VM (registers, memory, stats, the event batch), hoisted out of
        // `&mut self` so the compiler keeps them in registers.
        let max_instructions = self.config.max_instructions;
        let sim_nanos = matches!(self.config.cost, CostKind::SimNanos { .. });
        let trace_blocks = self.config.trace_blocks;
        // Jump/Branch terminators are executed inline ("chained") while
        // the slice has block budget to spare; the slice's final block
        // step always goes through the per-step scheduler path so
        // quantum preemption decisions stay with `note_step`.
        let chain_budget = self.sched.blocks_remaining();
        let Vm {
            threads,
            mem,
            stats,
            batch,
            ..
        } = &mut *self;
        let ThreadCtx {
            id,
            frames,
            rng,
            jitter,
            nanos,
            blocks,
            ..
        } = &mut threads[t];
        let id = *id;
        let frame = frames
            .last_mut()
            .ok_or(RunError::CorruptStack { thread: id })?;
        if batch.is_empty() {
            // The batch can only be non-empty with this same thread:
            // any thread switch flushes before its switch event.
            batch.set_thread(id);
        }
        let mut ip = frame.ip;
        // Plain constituents successfully executed in this run; bulk
        // accounted to the scheduler on exit. The constituent that
        // *errors* is counted in `stats.instructions` but not here —
        // the reference loop never `note_step`s a failed step either.
        let mut plain: u32 = 0;
        // Jump/Branch terminators executed inline (block steps).
        let mut chained: u32 = 0;
        // Instructions executed by this call (failing one included),
        // held in a register and materialized into `stats.instructions`
        // once on exit; the watchdog compares against the headroom
        // computed up front so the hot loop never touches `stats`.
        let mut done: u64 = 0;
        let budget_left = max_instructions - stats.instructions;
        let leave = 'blocks: loop {
            if ip >= ops.len() {
                // Terminator. Chain a Jump/Branch inline if the slice
                // still has block budget beyond this step; everything
                // else (Ret, the quantum's final block) leaves the fast
                // loop and runs on the reference path.
                if chained + 1 >= chain_budget {
                    break Leave::Term;
                }
                let target = match dblock.term {
                    Terminator::Jump(b) => b.index() as usize,
                    Terminator::Branch {
                        cond,
                        then_block,
                        else_block,
                    } => {
                        if ev(&frame.regs, cond) != 0 {
                            then_block.index() as usize
                        } else {
                            else_block.index() as usize
                        }
                    }
                    Terminator::Ret(_) => break Leave::Term,
                };
                if done >= budget_left {
                    break Leave::Err(RunError::InstructionLimit {
                        limit: max_instructions,
                    });
                }
                done += 1;
                if sim_nanos {
                    // Jump cost, then block-entry cost — the same two
                    // draws, in the same order, as the reference path.
                    add_sim_nanos(jitter, nanos, 1);
                    add_sim_nanos(jitter, nanos, 2);
                }
                *blocks += 1;
                chained += 1;
                block_idx = target;
                ip = 0;
                if trace_blocks {
                    stats.events_by_kind.block += 1;
                    flush_batch_to(batch, tool);
                    tool.on_block(id, routine_id, BlockId::new(target as u32));
                }
                dblock = &droutine.blocks[block_idx];
                ops = &dblock.ops[..];
                continue 'blocks;
            }
            if done >= budget_left {
                break Leave::Err(RunError::InstructionLimit {
                    limit: max_instructions,
                });
            }
            match &ops[ip] {
                DecodedOp::MovImm { dst, imm } => {
                    done += 1;
                    frame.regs[*dst as usize] = *imm;
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 1);
                    }
                }
                DecodedOp::MovReg { dst, src } => {
                    done += 1;
                    frame.regs[*dst as usize] = frame.regs[*src as usize];
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 1);
                    }
                }
                DecodedOp::Bin(h) => {
                    done += 1;
                    if let Err(e) = exec_bin_half(&mut frame.regs, h, routine_id) {
                        break Leave::Err(e);
                    }
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 1);
                    }
                }
                DecodedOp::Load { dst, base, offset } => {
                    done += 1;
                    match exec_load(
                        &mut frame.regs,
                        *dst,
                        *base,
                        *offset,
                        mem,
                        stats,
                        batch,
                        tool,
                    ) {
                        Ok(()) => {}
                        Err(e) => break Leave::Err(e),
                    }
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 3);
                    }
                }
                DecodedOp::Store { base, offset, src } => {
                    done += 1;
                    let a = ev(&frame.regs, *base).wrapping_add(ev(&frame.regs, *offset));
                    if a <= 0 || (a as u64) >= ADDRESS_LIMIT {
                        break Leave::Err(RunError::BadAddress { value: a });
                    }
                    let addr = Addr::new(a as u64);
                    let v = ev(&frame.regs, *src);
                    stats.events_by_kind.write += 1;
                    if batch.is_full() {
                        flush_batch_to(batch, tool);
                    }
                    batch.push(BatchKind::Write, addr, 1);
                    mem.store(addr, v);
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 3);
                    }
                }
                DecodedOp::Alloc { dst, cells } => {
                    done += 1;
                    let n = ev(&frame.regs, *cells).max(0) as u64;
                    let base = mem.alloc(n);
                    frame.regs[*dst as usize] = base.raw() as i64;
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 4);
                    }
                }
                DecodedOp::Rand { dst, bound } => {
                    done += 1;
                    let b = ev(&frame.regs, *bound).max(1);
                    frame.regs[*dst as usize] = rng.gen_range(0..b);
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 2);
                    }
                }
                DecodedOp::BinBin(a, b) => {
                    done += 1;
                    if let Err(e) = exec_bin_half(&mut frame.regs, a, routine_id) {
                        break Leave::Err(e);
                    }
                    plain += 1;
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 1);
                    }
                    // The watchdog fires between fused halves exactly as
                    // it would between the two unfused instructions.
                    if done >= budget_left {
                        break Leave::Err(RunError::InstructionLimit {
                            limit: max_instructions,
                        });
                    }
                    done += 1;
                    if let Err(e) = exec_bin_half(&mut frame.regs, b, routine_id) {
                        break Leave::Err(e);
                    }
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 1);
                    }
                }
                DecodedOp::BinLoad {
                    a,
                    dst,
                    base,
                    offset,
                } => {
                    done += 1;
                    if let Err(e) = exec_bin_half(&mut frame.regs, a, routine_id) {
                        break Leave::Err(e);
                    }
                    plain += 1;
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 1);
                    }
                    if done >= budget_left {
                        break Leave::Err(RunError::InstructionLimit {
                            limit: max_instructions,
                        });
                    }
                    done += 1;
                    match exec_load(
                        &mut frame.regs,
                        *dst,
                        *base,
                        *offset,
                        mem,
                        stats,
                        batch,
                        tool,
                    ) {
                        Ok(()) => {}
                        Err(e) => break Leave::Err(e),
                    }
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 3);
                    }
                }
                DecodedOp::LoadBin {
                    dst,
                    base,
                    offset,
                    b,
                } => {
                    done += 1;
                    match exec_load(
                        &mut frame.regs,
                        *dst,
                        *base,
                        *offset,
                        mem,
                        stats,
                        batch,
                        tool,
                    ) {
                        Ok(()) => {}
                        Err(e) => break Leave::Err(e),
                    }
                    plain += 1;
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 3);
                    }
                    if done >= budget_left {
                        break Leave::Err(RunError::InstructionLimit {
                            limit: max_instructions,
                        });
                    }
                    done += 1;
                    if let Err(e) = exec_bin_half(&mut frame.regs, b, routine_id) {
                        break Leave::Err(e);
                    }
                    if sim_nanos {
                        add_sim_nanos(jitter, nanos, 1);
                    }
                }
                DecodedOp::Slow { ip: orig } => break Leave::Slow(*orig),
            }
            plain += 1;
            ip += 1;
        };
        frame.ip = ip;
        frame.block = block_idx;
        stats.instructions += done;
        self.sched.note_plain_steps(plain);
        if chained > 0 {
            self.sched.note_block_steps(chained);
        }
        match leave {
            Leave::Err(e) => Err(e),
            Leave::Term => {
                if self.stats.instructions >= self.config.max_instructions {
                    return Err(RunError::InstructionLimit {
                        limit: self.config.max_instructions,
                    });
                }
                self.stats.instructions += 1;
                self.exec_terminator(t, &dblock.term, tool)
            }
            Leave::Slow(orig) => {
                if self.stats.instructions >= self.config.max_instructions {
                    return Err(RunError::InstructionLimit {
                        limit: self.config.max_instructions,
                    });
                }
                self.stats.instructions += 1;
                // Copying the `&'p Program` reference out of `self`
                // unties the instruction borrow from `&mut self`.
                let program: &'p Program = self.program;
                let inst = &program.routine(routine_id).blocks[block_idx].insts[orig as usize];
                // `exec_inst` advances `frame.ip` by one on completion —
                // one decoded slot, exactly what a Slow op occupies.
                self.exec_inst(t, inst, tool)
            }
        }
    }

    /// Delivers the pending event batch, if any. Called before every
    /// non-read/write tool callback so batched delivery preserves the
    /// per-event total order.
    #[inline]
    fn flush_batch<T: Tool + ?Sized>(&mut self, tool: &mut T) {
        flush_batch_to(&mut self.batch, tool);
    }

    /// The schedule recorded by this run, when
    /// [`RunConfig::record_sched`] was set.
    pub fn recorded_schedule(&self) -> Option<&Schedule> {
        self.sched.recorded()
    }

    /// Takes ownership of the recorded schedule (if any), leaving
    /// `None` behind.
    pub fn take_recorded_schedule(&mut self) -> Option<Schedule> {
        self.sched.take_recorded()
    }

    /// The wait-graph of currently blocked threads, with mutex
    /// ownership re-read at report time (ownership may have migrated
    /// since the thread blocked).
    fn wait_graph(&self) -> Vec<BlockedThread> {
        self.threads
            .iter()
            .filter(|t| t.state == ThreadState::Blocked)
            .map(|t| {
                let waiting_on = match t.waiting_on {
                    Some(WaitTarget::Mutex { mutex, .. }) => WaitTarget::Mutex {
                        mutex,
                        owner: self.mutexes[mutex as usize]
                            .owner
                            .map(|o| self.threads[o].id),
                    },
                    Some(w) => w,
                    // Unreachable for threads blocked through
                    // `block_thread`, but degrade to a self-join edge
                    // rather than panicking.
                    None => WaitTarget::Join(t.id),
                };
                BlockedThread {
                    thread: t.id,
                    waiting_on,
                }
            })
            .collect()
    }

    fn spawn_thread<T: Tool + ?Sized>(
        &mut self,
        routine: RoutineId,
        args: Vec<i64>,
        parent: Option<usize>,
        tool: &mut T,
    ) -> usize {
        let idx = self.threads.len();
        let id = ThreadId::new(idx as u32);
        let r = self.program.routine(routine);
        let mut regs = vec![0i64; r.regs as usize];
        regs[..args.len()].copy_from_slice(&args);
        let frame = Frame {
            routine,
            block: r.entry.index() as usize,
            ip: 0,
            regs,
            ret_dst: None,
            pending_entry: true,
        };
        self.threads.push(ThreadCtx {
            id,
            frames: vec![frame],
            state: ThreadState::Runnable,
            blocks: 0,
            nanos: 0,
            rng: SmallRng::seed_from_u64(self.config.seed ^ (idx as u64).wrapping_mul(0xA5A5_5A5A)),
            jitter: SmallRng::seed_from_u64(match self.config.cost {
                CostKind::SimNanos { jitter_seed } => jitter_seed ^ idx as u64,
                CostKind::BasicBlocks => idx as u64,
            }),
            resume: None,
            join_waiters: Vec::new(),
            waiting_on: None,
        });
        let parent_id = parent.map(|p| self.threads[p].id);
        self.stats.events_by_kind.thread_start += 1;
        self.stats.events_by_kind.call += 1;
        self.flush_batch(tool);
        tool.on_thread_start(id, parent_id);
        tool.on_call(id, routine, 0);
        idx
    }

    /// The innermost live frame of thread `t`.
    ///
    /// # Errors
    /// [`RunError::CorruptStack`] if the frame stack is empty — a
    /// malformed guest, reported structurally instead of panicking.
    #[inline]
    fn frame(&self, t: usize) -> Result<&Frame, RunError> {
        let th = &self.threads[t];
        th.frames
            .last()
            .ok_or(RunError::CorruptStack { thread: th.id })
    }

    /// Mutable access to the innermost live frame of thread `t`.
    ///
    /// # Errors
    /// [`RunError::CorruptStack`] on an empty frame stack.
    #[inline]
    fn frame_mut(&mut self, t: usize) -> Result<&mut Frame, RunError> {
        let th = &mut self.threads[t];
        let id = th.id;
        th.frames
            .last_mut()
            .ok_or(RunError::CorruptStack { thread: id })
    }

    #[inline]
    fn eval(&self, t: usize, op: Operand) -> Result<i64, RunError> {
        match op {
            Operand::Imm(v) => Ok(v),
            Operand::Reg(r) => Ok(self.frame(t)?.regs[r as usize]),
        }
    }

    fn addr_of(&self, base: i64, offset: i64) -> Result<Addr, RunError> {
        let a = base.wrapping_add(offset);
        if a <= 0 || (a as u64) >= ADDRESS_LIMIT {
            return Err(RunError::BadAddress { value: a });
        }
        Ok(Addr::new(a as u64))
    }

    #[inline]
    fn cost_of(&self, t: usize) -> u64 {
        match self.config.cost {
            CostKind::BasicBlocks => self.threads[t].blocks,
            CostKind::SimNanos { .. } => self.threads[t].nanos,
        }
    }

    #[inline]
    fn add_inst_cost(&mut self, t: usize, inst_kind_cost: u64) {
        if let CostKind::SimNanos { .. } = self.config.cost {
            // Base latency plus multiplicative jitter and occasional
            // cache-miss style spikes, mimicking real timers (Fig. 10).
            let th = &mut self.threads[t];
            let jitter = th.jitter.gen_range(0..=inst_kind_cost / 2 + 1);
            let spike = if th.jitter.gen_ratio(1, 64) { 40 } else { 0 };
            th.nanos += inst_kind_cost + jitter + spike;
        }
    }

    fn enter_block<T: Tool + ?Sized>(
        &mut self,
        t: usize,
        block: usize,
        tool: &mut T,
    ) -> Result<(), RunError> {
        let frame = self.frame_mut(t)?;
        frame.block = block;
        frame.ip = 0;
        frame.pending_entry = false;
        let routine = frame.routine;
        self.threads[t].blocks += 1;
        self.add_inst_cost(t, 2);
        if self.config.trace_blocks {
            self.stats.events_by_kind.block += 1;
            self.flush_batch(tool);
            tool.on_block(self.threads[t].id, routine, BlockId::new(block as u32));
        }
        Ok(())
    }

    fn wake(&mut self, t: usize) {
        debug_assert_eq!(self.threads[t].state, ThreadState::Blocked);
        self.threads[t].state = ThreadState::Runnable;
        self.threads[t].waiting_on = None;
    }

    fn block_thread(&mut self, t: usize, target: WaitTarget) -> Step {
        self.threads[t].state = ThreadState::Blocked;
        self.threads[t].waiting_on = Some(target);
        Step::Blocked
    }

    fn exit_thread<T: Tool + ?Sized>(&mut self, t: usize, tool: &mut T) -> Step {
        self.threads[t].state = ThreadState::Exited;
        let id = self.threads[t].id;
        let cost = self.cost_of(t);
        self.stats.events_by_kind.thread_exit += 1;
        self.flush_batch(tool);
        tool.on_thread_exit(id, cost);
        let waiters = std::mem::take(&mut self.threads[t].join_waiters);
        for w in waiters {
            self.wake(w);
        }
        Step::Exited
    }

    /// Executes one instruction (or terminator) of thread `t`.
    fn step<T: Tool + ?Sized>(&mut self, t: usize, tool: &mut T) -> Result<Step, RunError> {
        let (pending, routine_id, block_idx, ip) = {
            let frame = self.frame(t)?;
            (frame.pending_entry, frame.routine, frame.block, frame.ip)
        };
        if pending {
            self.enter_block(t, block_idx, tool)?;
            return Ok(Step::BlockEntered);
        }
        self.stats.instructions += 1;
        // Copying the `&'p Program` reference out of `self` unties the
        // instruction borrow from `&mut self`, avoiding per-step clones.
        let program: &'p Program = self.program;
        let block = &program.routine(routine_id).blocks[block_idx];
        if ip >= block.insts.len() {
            return self.exec_terminator(t, &block.term, tool);
        }
        self.exec_inst(t, &block.insts[ip], tool)
    }

    fn advance(&mut self, t: usize) -> Result<(), RunError> {
        self.frame_mut(t)?.ip += 1;
        Ok(())
    }

    fn set_reg(&mut self, t: usize, r: Reg, v: i64) -> Result<(), RunError> {
        self.frame_mut(t)?.regs[r as usize] = v;
        Ok(())
    }

    fn emit_sync<T: Tool + ?Sized>(&mut self, t: usize, op: SyncOp, tool: &mut T) {
        self.stats.events_by_kind.sync += 1;
        self.flush_batch(tool);
        tool.on_sync(self.threads[t].id, op);
    }

    fn exec_terminator<T: Tool + ?Sized>(
        &mut self,
        t: usize,
        term: &Terminator,
        tool: &mut T,
    ) -> Result<Step, RunError> {
        match *term {
            Terminator::Jump(b) => {
                self.add_inst_cost(t, 1);
                self.enter_block(t, b.index() as usize, tool)?;
                Ok(Step::BlockEntered)
            }
            Terminator::Branch {
                cond,
                then_block,
                else_block,
            } => {
                self.add_inst_cost(t, 1);
                let taken = if self.eval(t, cond)? != 0 {
                    then_block
                } else {
                    else_block
                };
                self.enter_block(t, taken.index() as usize, tool)?;
                Ok(Step::BlockEntered)
            }
            Terminator::Ret(v) => {
                let value = v.map(|op| self.eval(t, op)).transpose()?.unwrap_or(0);
                let id = self.threads[t].id;
                let frame = self.threads[t]
                    .frames
                    .pop()
                    .ok_or(RunError::CorruptStack { thread: id })?;
                let cost = self.cost_of(t);
                self.stats.events_by_kind.ret += 1;
                self.flush_batch(tool);
                tool.on_return(id, frame.routine, cost);
                let ret_dst = frame.ret_dst;
                self.frame_pool.push(frame);
                if self.threads[t].frames.is_empty() {
                    return Ok(self.exit_thread(t, tool));
                }
                if let Some(dst) = ret_dst {
                    self.set_reg(t, dst, value)?;
                }
                // The caller's ip was advanced past the call instruction
                // when the frame was pushed; the continuation resumes there
                // and counts as a fresh basic block, as dynamic binary
                // translation splits blocks at call sites.
                let caller = self.frame(t)?;
                let (cont_routine, cont_block) = (caller.routine, caller.block);
                self.threads[t].blocks += 1;
                self.add_inst_cost(t, 2);
                if self.config.trace_blocks {
                    self.stats.events_by_kind.block += 1;
                    tool.on_block(id, cont_routine, BlockId::new(cont_block as u32));
                }
                Ok(Step::BlockEntered)
            }
        }
    }

    fn exec_inst<T: Tool + ?Sized>(
        &mut self,
        t: usize,
        inst: &Inst,
        tool: &mut T,
    ) -> Result<Step, RunError> {
        match *inst {
            Inst::Mov { dst, src } => {
                let v = self.eval(t, src)?;
                self.set_reg(t, dst, v)?;
                self.add_inst_cost(t, 1);
                self.advance(t)?;
                Ok(Step::Continue)
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let a = self.eval(t, lhs)?;
                let b = self.eval(t, rhs)?;
                let routine = self.frame(t)?.routine;
                let v = op.apply(a, b).ok_or(RunError::DivisionByZero { routine })?;
                self.set_reg(t, dst, v)?;
                self.add_inst_cost(t, 1);
                self.advance(t)?;
                Ok(Step::Continue)
            }
            Inst::Load { dst, base, offset } => {
                let addr = self.addr_of(self.eval(t, base)?, self.eval(t, offset)?)?;
                let id = self.threads[t].id;
                self.stats.events_by_kind.read += 1;
                tool.on_read(id, addr, 1);
                let v = self.mem.load(addr);
                self.set_reg(t, dst, v)?;
                self.add_inst_cost(t, 3);
                self.advance(t)?;
                Ok(Step::Continue)
            }
            Inst::Store { base, offset, src } => {
                let addr = self.addr_of(self.eval(t, base)?, self.eval(t, offset)?)?;
                let v = self.eval(t, src)?;
                let id = self.threads[t].id;
                self.stats.events_by_kind.write += 1;
                tool.on_write(id, addr, 1);
                self.mem.store(addr, v);
                self.add_inst_cost(t, 3);
                self.advance(t)?;
                Ok(Step::Continue)
            }
            Inst::Alloc { dst, cells } => {
                let n = self.eval(t, cells)?.max(0) as u64;
                let base = self.mem.alloc(n);
                self.set_reg(t, dst, base.raw() as i64)?;
                self.add_inst_cost(t, 4);
                self.advance(t)?;
                Ok(Step::Continue)
            }
            Inst::Call {
                routine,
                ref args,
                dst,
            } => {
                let mut vals = std::mem::take(&mut self.call_scratch);
                vals.clear();
                for &a in args.iter() {
                    match self.eval(t, a) {
                        Ok(v) => vals.push(v),
                        Err(e) => {
                            self.call_scratch = vals;
                            return Err(e);
                        }
                    }
                }
                let callee = self.program.routine(routine);
                let entry = callee.entry.index() as usize;
                let mut frame = self.frame_pool.pop().unwrap_or_else(|| Frame {
                    routine,
                    block: entry,
                    ip: 0,
                    regs: Vec::new(),
                    ret_dst: dst,
                    pending_entry: false,
                });
                frame.routine = routine;
                frame.block = entry;
                frame.ip = 0;
                frame.ret_dst = dst;
                frame.pending_entry = false;
                frame.regs.clear();
                frame.regs.resize(callee.regs as usize, 0);
                frame.regs[..vals.len()].copy_from_slice(&vals);
                self.call_scratch = vals;
                self.advance(t)?; // resume after the call on return
                let id = self.threads[t].id;
                let cost = self.cost_of(t);
                self.stats.events_by_kind.call += 1;
                self.flush_batch(tool);
                tool.on_call(id, routine, cost);
                self.threads[t].frames.push(frame);
                self.add_inst_cost(t, 5);
                self.enter_block(t, entry, tool)?;
                Ok(Step::BlockEntered)
            }
            Inst::Spawn {
                routine,
                ref args,
                dst,
            } => {
                let vals = args
                    .iter()
                    .map(|&a| self.eval(t, a))
                    .collect::<Result<Vec<i64>, RunError>>()?;
                let child = self.spawn_thread(routine, vals, Some(t), tool);
                let child_id = self.threads[child].id;
                self.set_reg(t, dst, child_id.index() as i64)?;
                self.emit_sync(t, SyncOp::Spawn { child: child_id }, tool);
                self.add_inst_cost(t, 20);
                self.advance(t)?;
                Ok(Step::Synced)
            }
            Inst::Join { thread } => {
                let v = self.eval(t, thread)?;
                let target = usize::try_from(v)
                    .ok()
                    .filter(|&i| i < self.threads.len())
                    .ok_or(RunError::BadThreadId { value: v })?;
                if self.threads[target].state == ThreadState::Exited {
                    let child = self.threads[target].id;
                    self.emit_sync(t, SyncOp::Join { child }, tool);
                    self.add_inst_cost(t, 5);
                    self.advance(t)?;
                    Ok(Step::Synced)
                } else {
                    self.threads[target].join_waiters.push(t);
                    let child = self.threads[target].id;
                    Ok(self.block_thread(t, WaitTarget::Join(child)))
                }
            }
            Inst::SemWait { sem } => {
                if self.sems[sem as usize].value > 0 {
                    self.sems[sem as usize].value -= 1;
                    self.emit_sync(t, SyncOp::SemWait(sem), tool);
                    self.add_inst_cost(t, 8);
                    self.advance(t)?;
                    Ok(Step::Synced)
                } else {
                    self.sems[sem as usize].waiters.push_back(t);
                    Ok(self.block_thread(t, WaitTarget::Semaphore(sem)))
                }
            }
            Inst::SemSignal { sem } => {
                self.sems[sem as usize].value += 1;
                if let Some(w) = self.sems[sem as usize].waiters.pop_front() {
                    self.wake(w);
                }
                self.emit_sync(t, SyncOp::SemSignal(sem), tool);
                self.add_inst_cost(t, 8);
                self.advance(t)?;
                Ok(Step::Synced)
            }
            Inst::MutexLock { mutex } => self.lock_mutex(t, mutex, false, tool),
            Inst::MutexUnlock { mutex } => {
                let m = &mut self.mutexes[mutex as usize];
                if m.owner != Some(t) {
                    return Err(RunError::MutexNotOwned {
                        mutex,
                        thread: self.threads[t].id,
                    });
                }
                m.owner = None;
                if let Some(w) = m.waiters.pop_front() {
                    self.wake(w);
                }
                self.emit_sync(t, SyncOp::MutexUnlock(mutex), tool);
                self.add_inst_cost(t, 6);
                self.advance(t)?;
                Ok(Step::Synced)
            }
            Inst::CondWait { cond, mutex } => {
                if self.threads[t].resume == Some(Resume::ReacquireMutex(mutex)) {
                    return self.lock_mutex(t, mutex, true, tool);
                }
                let m = &mut self.mutexes[mutex as usize];
                if m.owner != Some(t) {
                    return Err(RunError::MutexNotOwned {
                        mutex,
                        thread: self.threads[t].id,
                    });
                }
                m.owner = None;
                if let Some(w) = m.waiters.pop_front() {
                    self.wake(w);
                }
                self.conds[cond as usize].waiters.push_back(t);
                self.threads[t].resume = Some(Resume::ReacquireMutex(mutex));
                self.emit_sync(t, SyncOp::CondWait { cond, mutex }, tool);
                Ok(self.block_thread(t, WaitTarget::Condvar(cond)))
            }
            Inst::CondSignal { cond } => {
                if let Some(w) = self.conds[cond as usize].waiters.pop_front() {
                    self.wake(w);
                }
                self.emit_sync(t, SyncOp::CondSignal(cond), tool);
                self.add_inst_cost(t, 6);
                self.advance(t)?;
                Ok(Step::Synced)
            }
            Inst::CondBroadcast { cond } => {
                while let Some(w) = self.conds[cond as usize].waiters.pop_front() {
                    self.wake(w);
                }
                self.emit_sync(t, SyncOp::CondBroadcast(cond), tool);
                self.add_inst_cost(t, 6);
                self.advance(t)?;
                Ok(Step::Synced)
            }
            Inst::Syscall { call, dst } => self.exec_syscall(t, call, dst, tool),
            Inst::Rand { dst, bound } => {
                let b = self.eval(t, bound)?.max(1);
                let v = self.threads[t].rng.gen_range(0..b);
                self.set_reg(t, dst, v)?;
                self.add_inst_cost(t, 2);
                self.advance(t)?;
                Ok(Step::Continue)
            }
            Inst::Yield => {
                self.add_inst_cost(t, 1);
                self.advance(t)?;
                Ok(Step::Yielded)
            }
        }
    }

    fn lock_mutex<T: Tool + ?Sized>(
        &mut self,
        t: usize,
        mutex: u32,
        from_cond: bool,
        tool: &mut T,
    ) -> Result<Step, RunError> {
        let m = &mut self.mutexes[mutex as usize];
        match m.owner {
            None => {
                m.owner = Some(t);
                if from_cond {
                    self.threads[t].resume = None;
                }
                self.emit_sync(t, SyncOp::MutexLock(mutex), tool);
                self.add_inst_cost(t, 6);
                self.advance(t)?;
                Ok(Step::Synced)
            }
            Some(owner) if owner == t => Err(RunError::MutexReentry {
                mutex,
                thread: self.threads[t].id,
            }),
            Some(owner) => {
                m.waiters.push_back(t);
                let owner_id = self.threads[owner].id;
                Ok(self.block_thread(
                    t,
                    WaitTarget::Mutex {
                        mutex,
                        owner: Some(owner_id),
                    },
                ))
            }
        }
    }

    /// Completes a failed syscall POSIX-style: the destination register
    /// receives `-errno` and execution continues. Kernel failures never
    /// abort the run.
    fn deliver_errno(
        &mut self,
        t: usize,
        dst: Option<Reg>,
        e: &KernelError,
    ) -> Result<Step, RunError> {
        self.kernel.count_errno_return();
        if let Some(d) = dst {
            self.set_reg(t, d, -e.errno())?;
        }
        self.add_inst_cost(t, 30);
        self.advance(t)?;
        Ok(Step::Kernel)
    }

    fn exec_syscall<T: Tool + ?Sized>(
        &mut self,
        t: usize,
        call: Syscall,
        dst: Option<Reg>,
        tool: &mut T,
    ) -> Result<Step, RunError> {
        let fd = self.eval(t, call.fd)?;
        let len = self.eval(t, call.len)?.max(0) as u32;
        let buf = self.addr_of(self.eval(t, call.buf)?, 0)?;
        let offset = call
            .no
            .is_positioned()
            .then(|| self.eval(t, call.offset))
            .transpose()?
            .map(|o| o.max(0) as u64);
        self.stats.syscalls += 1;
        let id = self.threads[t].id;
        // The fault gate decides the effective transfer length (short
        // reads/writes) or fails the call with an errno, *before* any
        // kernelToUser/userToKernel event is emitted — events must tag
        // only cells the kernel actually moves, or drms would count
        // input the guest never received.
        let dir = call.no.direction();
        let effective = match self.kernel.prepare_transfer(fd, dir, len) {
            Ok(n) => n,
            Err(e) => return self.deliver_errno(t, dst, &e),
        };
        let transferred = match dir {
            Direction::Input => {
                self.scratch.clear();
                let n = match self
                    .kernel
                    .input_into(fd, effective, offset, &mut self.scratch)
                {
                    Ok(n) => n,
                    Err(e) => return self.deliver_errno(t, dst, &e),
                };
                if n > 0 {
                    // The kernel writes external data into the user buffer.
                    self.stats.events_by_kind.kernel_to_user += 1;
                    self.flush_batch(tool);
                    tool.on_kernel_to_user(id, buf, n);
                    self.mem.store_slice(buf, &self.scratch);
                }
                n
            }
            Direction::Output => {
                self.scratch.clear();
                self.mem.load_into(buf, effective, &mut self.scratch);
                let n = match self.kernel.output(fd, &self.scratch, offset) {
                    Ok(n) => n,
                    Err(e) => return self.deliver_errno(t, dst, &e),
                };
                if n > 0 {
                    // The kernel reads the accepted prefix of the user
                    // buffer on the thread's behalf — "as if the system
                    // call were a normal subroutine" (Fig. 9).
                    self.stats.events_by_kind.user_to_kernel += 1;
                    self.flush_batch(tool);
                    tool.on_user_to_kernel(id, buf, n);
                }
                n
            }
        };
        let bucket = TRANSFER_CELL_BOUNDS
            .iter()
            .position(|&b| u64::from(transferred) <= b)
            .unwrap_or(TRANSFER_CELL_BOUNDS.len());
        self.transfer_buckets[bucket] += 1;
        self.transfer_cells_sum += u64::from(transferred);
        if let Some(d) = dst {
            self.set_reg(t, d, transferred as i64)?;
        }
        self.add_inst_cost(t, 30 + 2 * transferred as u64);
        self.advance(t)?;
        Ok(Step::Kernel)
    }
}

/// Why the decoded plain-op loop stopped.
enum Leave {
    /// The block's ops are exhausted: execute the terminator.
    Term,
    /// A slow op at the given *source* instruction index needs the
    /// reference path.
    Slow(u32),
    /// An error aborts the run (the failing constituent is already
    /// counted in `stats.instructions`, like the reference loop).
    Err(RunError),
}

/// Register/immediate operand read against a live frame — the decoded
/// loop's counterpart of [`Vm::eval`], with the frame already borrowed.
#[inline(always)]
fn ev(regs: &[i64], op: Operand) -> i64 {
    match op {
        Operand::Imm(v) => v,
        Operand::Reg(r) => regs[r as usize],
    }
}

/// One `Bin` constituent: evaluate, apply, write back.
#[inline(always)]
fn exec_bin_half(regs: &mut [i64], h: &BinHalf, routine: RoutineId) -> Result<(), RunError> {
    let a = ev(regs, h.lhs);
    let b = ev(regs, h.rhs);
    let v =
        h.op.apply(a, b)
            .ok_or(RunError::DivisionByZero { routine })?;
    regs[h.dst as usize] = v;
    Ok(())
}

/// One `Load` constituent: address check, event emission into the
/// batch, memory read, register write-back. Event tallies land in
/// `stats` at emission time so `RunStats` equality holds regardless of
/// when the batch is flushed.
#[allow(clippy::too_many_arguments)] // hot-path: split borrows, not a context struct
#[inline(always)]
fn exec_load<T: Tool + ?Sized>(
    regs: &mut [i64],
    dst: Reg,
    base: Operand,
    offset: Operand,
    mem: &mut Memory,
    stats: &mut RunStats,
    batch: &mut EventBatch,
    tool: &mut T,
) -> Result<(), RunError> {
    let a = ev(regs, base).wrapping_add(ev(regs, offset));
    if a <= 0 || (a as u64) >= ADDRESS_LIMIT {
        return Err(RunError::BadAddress { value: a });
    }
    let addr = Addr::new(a as u64);
    stats.events_by_kind.read += 1;
    if batch.is_full() {
        flush_batch_to(batch, tool);
    }
    batch.push(BatchKind::Read, addr, 1);
    regs[dst as usize] = mem.load(addr);
    Ok(())
}

/// The [`Vm::add_inst_cost`] jitter model, with the thread's RNG and
/// nanos counter already split-borrowed out of the VM.
#[inline(always)]
fn add_sim_nanos(jitter: &mut SmallRng, nanos: &mut u64, inst_kind_cost: u64) {
    let j = jitter.gen_range(0..=inst_kind_cost / 2 + 1);
    let spike = if jitter.gen_ratio(1, 64) { 40 } else { 0 };
    *nanos += inst_kind_cost + j + spike;
}

/// Delivers and clears a non-empty batch.
#[inline]
fn flush_batch_to<T: Tool + ?Sized>(batch: &mut EventBatch, tool: &mut T) {
    if !batch.is_empty() {
        tool.observe_batch(batch);
        batch.clear();
    }
}

impl fmt::Debug for Vm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("threads", &self.threads.len())
            .field("instructions", &self.stats.instructions)
            .finish()
    }
}

/// Builds a VM and runs `program` under `config` with `tool` attached.
///
/// Convenience wrapper over [`Vm::new`] + [`Vm::run`].
///
/// # Errors
/// Propagates any [`RunError`].
pub fn run_program<T: Tool + ?Sized>(
    program: &Program,
    config: RunConfig,
    tool: &mut T,
) -> Result<RunStats, RunError> {
    Vm::new(program, config)?.run(tool)
}

/// Monomorphized fast path of [`run_program`]: `T` is `Sized` and known
/// at the call site, so the per-event hot loop compiles with direct
/// (inlinable) calls into the tool — no `dyn Tool` vtable dispatch.
///
/// Callers holding a `&mut dyn Tool` should branch on the concrete tool
/// *once* and call this with the unerased type; keep
/// [`MultiTool`](crate::MultiTool) for fanning one event stream out to
/// several tools.
///
/// # Errors
/// Propagates any [`RunError`].
#[inline]
pub fn run_program_with<T: Tool>(
    program: &Program,
    config: RunConfig,
    tool: &mut T,
) -> Result<RunStats, RunError> {
    Vm::new(program, config)?.run(tool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::kernel::Device;
    use crate::stats::SchedPolicy;
    use crate::tool::NullTool;

    fn run_main(
        body: impl FnOnce(&mut crate::builder::FnBuilder),
        config: RunConfig,
    ) -> Result<RunStats, RunError> {
        let mut pb = ProgramBuilder::new();
        let main = pb.function("main", 0, body);
        let program = pb.finish(main).expect("build");
        run_program(&program, config, &mut NullTool)
    }

    #[test]
    fn division_by_zero_is_reported() {
        let err = run_main(
            |f| {
                let z = f.copy(0);
                let _ = f.div(1, z);
            },
            RunConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RunError::DivisionByZero { .. }));
        assert!(err.to_string().contains("division by zero"));
    }

    #[test]
    fn bad_address_is_reported() {
        let err = run_main(
            |f| {
                let _ = f.load(-5, 0);
            },
            RunConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, RunError::BadAddress { value: -5 });
    }

    #[test]
    fn instruction_limit_aborts_infinite_loops() {
        let cfg = RunConfig {
            max_instructions: 10_000,
            ..RunConfig::default()
        };
        let err = run_main(
            |f| {
                let head = f.new_block();
                f.jump(head);
                f.switch_to(head);
                let _ = f.add(1, 1);
                f.jump(head);
            },
            cfg,
        )
        .unwrap_err();
        assert_eq!(err, RunError::InstructionLimit { limit: 10_000 });
    }

    #[test]
    fn zero_deadline_aborts_before_the_first_slice() {
        let cfg = RunConfig {
            deadline: Some(std::time::Duration::ZERO),
            ..RunConfig::default()
        };
        let err = run_main(
            |f| {
                let _ = f.add(1, 1);
            },
            cfg,
        )
        .unwrap_err();
        assert_eq!(err, RunError::DeadlineExceeded { millis: 0 });
        assert!(
            err.to_string().contains("deadline of 0 ms"),
            "message reports the configured budget, not elapsed time"
        );
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let cfg = RunConfig {
            deadline: Some(std::time::Duration::from_secs(3600)),
            ..RunConfig::default()
        };
        run_main(
            |f| {
                let _ = f.add(1, 1);
            },
            cfg,
        )
        .unwrap();
    }

    #[test]
    fn self_deadlock_is_detected() {
        let mut pb = ProgramBuilder::new();
        let sem = pb.semaphore(0);
        let main = pb.function("main", 0, |f| {
            f.sem_wait(sem); // never signalled
        });
        let program = pb.finish(main).unwrap();
        let err = run_program(&program, RunConfig::default(), &mut NullTool).unwrap_err();
        assert!(matches!(err, RunError::Deadlock { ref blocked } if blocked.len() == 1));
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn unlocking_foreign_mutex_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let m = pb.mutex();
        let main = pb.function("main", 0, |f| f.unlock(m));
        let program = pb.finish(main).unwrap();
        let err = run_program(&program, RunConfig::default(), &mut NullTool).unwrap_err();
        assert!(matches!(err, RunError::MutexNotOwned { mutex: 0, .. }));
    }

    #[test]
    fn relocking_held_mutex_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let m = pb.mutex();
        let main = pb.function("main", 0, |f| {
            f.lock(m);
            f.lock(m);
        });
        let program = pb.finish(main).unwrap();
        let err = run_program(&program, RunConfig::default(), &mut NullTool).unwrap_err();
        assert!(matches!(err, RunError::MutexReentry { mutex: 0, .. }));
    }

    #[test]
    fn join_on_garbage_thread_id_is_an_error() {
        let err = run_main(|f| f.join(99), RunConfig::default()).unwrap_err();
        assert_eq!(err, RunError::BadThreadId { value: 99 });
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed_and_varies_across_seeds() {
        let build = || {
            let mut pb = ProgramBuilder::new();
            let g = pb.global(8);
            let worker = pb.function("worker", 1, |f| {
                let tid = f.param(0);
                f.for_range(0, 50, |f, i| {
                    let v = f.mul(i, 3);
                    let slot = f.rem(v, 8);
                    f.store(g.raw() as i64, slot, v);
                });
                let _ = tid;
                f.ret(None);
            });
            let main = pb.function("main", 0, |f| {
                let a = f.spawn(worker, &[Operand::Imm(0)]);
                let b = f.spawn(worker, &[Operand::Imm(1)]);
                f.join(a);
                f.join(b);
            });
            pb.finish(main).unwrap()
        };
        let program = build();
        let run = |policy| {
            let cfg = RunConfig {
                policy,
                quantum: 3,
                ..RunConfig::default()
            };
            let mut rec = crate::recorder::TraceRecorder::new();
            run_program(&program, cfg, &mut rec).expect("run");
            drms_trace::merge_traces(rec.into_traces())
        };
        let a = run(crate::stats::SchedPolicy::Random { seed: 5 });
        let b = run(crate::stats::SchedPolicy::Random { seed: 5 });
        assert_eq!(a, b, "same seed gives the same interleaving");
        let c = run(crate::stats::SchedPolicy::Random { seed: 6 });
        assert_ne!(a, c, "different seeds interleave differently");
    }

    #[test]
    fn sim_nanos_cost_is_noisy_but_monotone() {
        let mut pb = ProgramBuilder::new();
        let main = pb.function("main", 0, |f| {
            f.for_range(0, 200, |f, i| {
                let _ = f.mul(i, i);
            });
        });
        let program = pb.finish(main).unwrap();
        let cfg = RunConfig {
            cost: CostKind::SimNanos { jitter_seed: 1 },
            ..RunConfig::default()
        };
        let stats = run_program(&program, cfg, &mut NullTool).unwrap();
        assert!(stats.per_thread_nanos[0] > stats.per_thread_blocks[0]);
        let cfg2 = RunConfig {
            cost: CostKind::SimNanos { jitter_seed: 2 },
            ..RunConfig::default()
        };
        let stats2 = run_program(&program, cfg2, &mut NullTool).unwrap();
        assert_ne!(
            stats.per_thread_nanos, stats2.per_thread_nanos,
            "different jitter seeds give different timings"
        );
    }

    #[test]
    fn yield_rotates_between_threads() {
        let mut pb = ProgramBuilder::new();
        let worker = pb.function("worker", 0, |f| {
            f.for_range(0, 20, |f, _| f.yield_now());
        });
        let main = pb.function("main", 0, |f| {
            let a = f.spawn(worker, &[]);
            let b = f.spawn(worker, &[]);
            f.join(a);
            f.join(b);
        });
        let program = pb.finish(main).unwrap();
        let stats = run_program(&program, RunConfig::default(), &mut NullTool).unwrap();
        assert!(stats.thread_switches > 20, "yields force frequent switches");
    }

    #[test]
    fn condvar_wait_signal_roundtrip() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(2);
        let m = pb.mutex();
        let cv = pb.condvar();
        let waiter = pb.function("waiter", 0, |f| {
            f.lock(m);
            let ready_head = f.new_block();
            let done = f.new_block();
            f.jump(ready_head);
            f.switch_to(ready_head);
            let ready = f.load(g.raw() as i64, 0);
            let is_ready = f.ne(ready, 0);
            let wait_blk = f.new_block();
            f.branch(is_ready, done, wait_blk);
            f.switch_to(wait_blk);
            f.cond_wait(cv, m);
            f.jump(ready_head);
            f.switch_to(done);
            f.store(g.raw() as i64, 1, 42); // observed the flag
            f.unlock(m);
            f.ret(None);
        });
        let main = pb.function("main", 0, |f| {
            let t = f.spawn(waiter, &[]);
            f.lock(m);
            f.store(g.raw() as i64, 0, 1);
            f.cond_signal(cv);
            f.unlock(m);
            f.join(t);
        });
        let program = pb.finish(main).unwrap();
        let mut vm = Vm::new(&program, RunConfig::default()).unwrap();
        vm.run(&mut NullTool).unwrap();
        assert_eq!(vm.memory().load(drms_trace::Addr::new(0x101)), 42);
    }

    #[test]
    fn cond_broadcast_wakes_all_waiters() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(4);
        let m = pb.mutex();
        let cv = pb.condvar();
        let waiter = pb.function("waiter", 1, |f| {
            let slot = f.param(0);
            f.lock(m);
            let flag = f.load(g.raw() as i64, 3);
            let not_ready = f.eq(flag, 0);
            f.if_then(not_ready, |f| f.cond_wait(cv, m));
            f.store(g.raw() as i64, slot, 7);
            f.unlock(m);
            f.ret(None);
        });
        let main = pb.function("main", 0, |f| {
            let a = f.spawn(waiter, &[Operand::Imm(0)]);
            let b = f.spawn(waiter, &[Operand::Imm(1)]);
            // give the waiters a chance to block
            f.for_range(0, 100, |f, i| {
                let _ = f.add(i, 1);
            });
            f.lock(m);
            f.store(g.raw() as i64, 3, 1);
            f.cond_broadcast(cv);
            f.unlock(m);
            f.join(a);
            f.join(b);
        });
        let program = pb.finish(main).unwrap();
        let mut vm = Vm::new(&program, RunConfig::default()).unwrap();
        vm.run(&mut NullTool).unwrap();
        assert_eq!(vm.memory().load(drms_trace::Addr::new(0x100)), 7);
        assert_eq!(vm.memory().load(drms_trace::Addr::new(0x101)), 7);
    }

    #[test]
    fn syscall_eof_returns_zero() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(4);
        let main = pb.function("main", 0, |f| {
            let buf = f.alloc(4);
            let n1 = f.syscall(crate::kernel::SyscallNo::Read, 0, buf, 4, 0);
            let n2 = f.syscall(crate::kernel::SyscallNo::Read, 0, buf, 4, 0);
            f.store(g.raw() as i64, 0, n1);
            f.store(g.raw() as i64, 1, n2);
        });
        let program = pb.finish(main).unwrap();
        let cfg = RunConfig::with_devices(vec![Device::File {
            data: vec![9, 8, 7],
        }]);
        let mut vm = Vm::new(&program, cfg).unwrap();
        vm.run(&mut NullTool).unwrap();
        assert_eq!(vm.memory().load(drms_trace::Addr::new(0x100)), 3);
        assert_eq!(vm.memory().load(drms_trace::Addr::new(0x101)), 0, "EOF");
    }

    #[test]
    fn unknown_fd_returns_ebadf_to_the_guest() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(1);
        let main = pb.function("main", 0, |f| {
            let buf = f.alloc(2);
            let n = f.syscall(crate::kernel::SyscallNo::Read, 7, buf, 2, 0);
            f.store(g.raw() as i64, 0, n);
        });
        let program = pb.finish(main).unwrap();
        let mut vm = Vm::new(&program, RunConfig::default()).unwrap();
        vm.run(&mut NullTool)
            .expect("kernel errors do not abort the run");
        assert_eq!(
            vm.memory().load(drms_trace::Addr::new(0x100)),
            -9,
            "guest sees -EBADF"
        );
        assert_eq!(vm.kernel().fault_counters().errno_returns, 1);
    }

    #[test]
    fn deadlock_error_names_waited_resources() {
        let mut pb = ProgramBuilder::new();
        let sem = pb.semaphore(0);
        let main = pb.function("main", 0, |f| {
            f.sem_wait(sem); // never signalled
        });
        let program = pb.finish(main).unwrap();
        let err = run_program(&program, RunConfig::default(), &mut NullTool).unwrap_err();
        match &err {
            RunError::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].waiting_on, WaitTarget::Semaphore(sem));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert!(err.to_string().contains("semaphore 0"), "{err}");
    }

    #[test]
    fn mutex_deadlock_reports_the_owner() {
        let mut pb = ProgramBuilder::new();
        let m = pb.mutex();
        let sem = pb.semaphore(0);
        let holder = pb.function("holder", 0, |f| {
            f.lock(m);
            f.sem_wait(sem); // parks forever while holding the mutex
            f.unlock(m);
            f.ret(None);
        });
        let main = pb.function("main", 0, |f| {
            let _h = f.spawn(holder, &[]);
            // Let the holder take the lock first.
            f.for_range(0, 200, |f, i| {
                let _ = f.add(i, 1);
            });
            f.lock(m);
        });
        let program = pb.finish(main).unwrap();
        let err = run_program(&program, RunConfig::default(), &mut NullTool).unwrap_err();
        match &err {
            RunError::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 2);
                let holder_id = ThreadId::new(1);
                assert!(blocked
                    .iter()
                    .any(|b| b.thread == holder_id && b.waiting_on == WaitTarget::Semaphore(sem)));
                assert!(blocked.iter().any(|b| b.waiting_on
                    == WaitTarget::Mutex {
                        mutex: m,
                        owner: Some(holder_id),
                    }));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert!(err.to_string().contains("held by"), "{err}");
    }

    #[test]
    fn join_cycle_deadlock_names_the_join_target() {
        let mut pb = ProgramBuilder::new();
        let waiter = pb.function("waiter", 0, |f| {
            // Join the main thread (id 0): a join cycle.
            f.join(0);
            f.ret(None);
        });
        let main = pb.function("main", 0, |f| {
            let h = f.spawn(waiter, &[]);
            f.join(h);
        });
        let program = pb.finish(main).unwrap();
        let err = run_program(&program, RunConfig::default(), &mut NullTool).unwrap_err();
        match &err {
            RunError::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 2);
                let targets: Vec<WaitTarget> = blocked.iter().map(|b| b.waiting_on).collect();
                assert!(targets.contains(&WaitTarget::Join(ThreadId::new(0))));
                assert!(targets.contains(&WaitTarget::Join(ThreadId::new(1))));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert!(err.to_string().contains("join of"), "{err}");
    }

    #[test]
    fn watchdog_abort_still_finalizes_stats_and_finishes_the_tool() {
        struct FinishProbe {
            finished: bool,
        }
        impl drms_trace::EventSink for FinishProbe {
            fn on_finish(&mut self) {
                self.finished = true;
            }
        }
        impl Tool for FinishProbe {
            fn name(&self) -> &str {
                "finish-probe"
            }
        }
        let mut pb = ProgramBuilder::new();
        let main = pb.function("main", 0, |f| {
            let head = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let _ = f.add(1, 1);
            f.jump(head);
        });
        let program = pb.finish(main).unwrap();
        let cfg = RunConfig {
            max_instructions: 5_000,
            ..RunConfig::default()
        };
        let mut vm = Vm::new(&program, cfg).unwrap();
        let mut probe = FinishProbe { finished: false };
        let err = vm.run(&mut probe).unwrap_err();
        assert_eq!(err, RunError::InstructionLimit { limit: 5_000 });
        assert!(probe.finished, "on_finish runs even on abort");
        let stats = vm.stats();
        assert!(stats.instructions >= 5_000);
        assert!(stats.basic_blocks > 0);
        assert_eq!(stats.per_thread_blocks.len(), 1);
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn injected_short_reads_tag_only_delivered_cells() {
        use crate::fault::FaultPlan;
        struct K2uProbe {
            cells: Vec<u32>,
        }
        impl drms_trace::EventSink for K2uProbe {
            fn on_kernel_to_user(&mut self, _t: ThreadId, _addr: Addr, len: u32) {
                self.cells.push(len);
            }
        }
        impl Tool for K2uProbe {
            fn name(&self) -> &str {
                "k2u-probe"
            }
        }
        let mut pb = ProgramBuilder::new();
        let g = pb.global(1);
        let main = pb.function("main", 0, |f| {
            let buf = f.alloc(8);
            let n = f.syscall(crate::kernel::SyscallNo::Read, 0, buf, 8, 0);
            f.store(g.raw() as i64, 0, n);
        });
        let program = pb.finish(main).unwrap();
        let cfg = RunConfig {
            faults: Some(FaultPlan::parse("fd0:shortread:every=1").unwrap()),
            ..RunConfig::with_devices(vec![Device::Stream { seed: 3 }])
        };
        let mut vm = Vm::new(&program, cfg).unwrap();
        let mut probe = K2uProbe { cells: Vec::new() };
        vm.run(&mut probe).unwrap();
        assert_eq!(probe.cells, vec![4], "event tags delivered cells only");
        assert_eq!(vm.memory().load(drms_trace::Addr::new(0x100)), 4);
        assert_eq!(vm.stats().faults.short_reads, 1);
    }

    #[test]
    fn injected_eintr_returns_negative_errno_and_counts() {
        use crate::fault::FaultPlan;
        let mut pb = ProgramBuilder::new();
        let g = pb.global(2);
        let main = pb.function("main", 0, |f| {
            let buf = f.alloc(4);
            let n1 = f.syscall(crate::kernel::SyscallNo::Read, 0, buf, 4, 0);
            let n2 = f.syscall(crate::kernel::SyscallNo::Read, 0, buf, 4, 0);
            f.store(g.raw() as i64, 0, n1);
            f.store(g.raw() as i64, 1, n2);
        });
        let program = pb.finish(main).unwrap();
        let cfg = RunConfig {
            faults: Some(FaultPlan::parse("in:eintr:once=1").unwrap()),
            ..RunConfig::with_devices(vec![Device::Stream { seed: 3 }])
        };
        let mut vm = Vm::new(&program, cfg).unwrap();
        vm.run(&mut NullTool).unwrap();
        assert_eq!(vm.memory().load(drms_trace::Addr::new(0x100)), -4, "-EINTR");
        assert_eq!(
            vm.memory().load(drms_trace::Addr::new(0x101)),
            4,
            "retry succeeds"
        );
        let faults = vm.stats().faults;
        assert_eq!(faults.transient_errors, 1);
        assert_eq!(faults.errno_returns, 1);
    }

    /// A contended two-worker program exercising sync ops and syscalls —
    /// plenty of scheduling decision points.
    fn contended_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(8);
        let m = pb.mutex();
        let worker = pb.function("worker", 1, |f| {
            let tid = f.param(0);
            let buf = f.alloc(4);
            f.for_range(0, 20, |f, i| {
                f.lock(m);
                let v = f.mul(i, 3);
                let slot = f.rem(v, 8);
                f.store(g.raw() as i64, slot, v);
                f.unlock(m);
                let _ = f.syscall(crate::kernel::SyscallNo::Read, 0, buf, 2, 0);
            });
            let _ = tid;
            f.ret(None);
        });
        let main = pb.function("main", 0, |f| {
            let a = f.spawn(worker, &[Operand::Imm(0)]);
            let b = f.spawn(worker, &[Operand::Imm(1)]);
            f.join(a);
            f.join(b);
        });
        pb.finish(main).unwrap()
    }

    fn record_run(
        program: &Program,
        policy: SchedPolicy,
    ) -> (Vec<drms_trace::TimedEvent>, crate::Schedule) {
        let cfg = RunConfig {
            policy,
            quantum: 5,
            record_sched: true,
            ..RunConfig::with_devices(vec![Device::Stream { seed: 9 }])
        };
        let mut vm = Vm::new(program, cfg).unwrap();
        let mut rec = crate::recorder::TraceRecorder::new();
        vm.run(&mut rec).expect("run");
        let schedule = vm.take_recorded_schedule().expect("recorded");
        (drms_trace::merge_traces(rec.into_traces()), schedule)
    }

    fn replay_run(
        program: &Program,
        schedule: crate::Schedule,
    ) -> Result<Vec<drms_trace::TimedEvent>, RunError> {
        let cfg = RunConfig {
            policy: SchedPolicy::Replay { relaxed: false },
            quantum: 5,
            replay: Some(std::sync::Arc::new(schedule)),
            ..RunConfig::with_devices(vec![Device::Stream { seed: 9 }])
        };
        let mut vm = Vm::new(program, cfg).unwrap();
        let mut rec = crate::recorder::TraceRecorder::new();
        vm.run(&mut rec)?;
        Ok(drms_trace::merge_traces(rec.into_traces()))
    }

    #[test]
    fn replaying_a_recorded_chaos_schedule_reproduces_the_event_stream() {
        let program = contended_program();
        for seed in [1u64, 7, 42] {
            let (events, schedule) = record_run(&program, SchedPolicy::Chaos { seed });
            assert!(!schedule.is_empty());
            let replayed = replay_run(&program, schedule).expect("strict replay");
            assert_eq!(events, replayed, "seed {seed}: bit-identical event stream");
        }
    }

    #[test]
    fn replaying_a_recorded_round_robin_schedule_reproduces_the_event_stream() {
        let program = contended_program();
        let (events, schedule) = record_run(&program, SchedPolicy::RoundRobin);
        let replayed = replay_run(&program, schedule).expect("strict replay");
        assert_eq!(events, replayed);
    }

    #[test]
    fn chaos_preempts_at_sync_points() {
        let program = contended_program();
        let (_, schedule) = record_run(&program, SchedPolicy::Chaos { seed: 3 });
        let has_sync_or_kernel = schedule.decisions.iter().any(|d| {
            matches!(
                d.cause,
                drms_trace::sched::PreemptCause::Sync | drms_trace::sched::PreemptCause::Kernel
            )
        });
        assert!(has_sync_or_kernel, "chaos injected sync/kernel preemptions");
    }

    #[test]
    fn replay_of_a_different_program_diverges_instead_of_misattributing() {
        let program = contended_program();
        let (_, schedule) = record_run(&program, SchedPolicy::Chaos { seed: 1 });
        // A different guest cannot follow the recorded slices.
        let mut pb = ProgramBuilder::new();
        let main = pb.function("main", 0, |f| {
            f.for_range(0, 5, |f, i| {
                let _ = f.add(i, 1);
            });
        });
        let other = pb.finish(main).unwrap();
        let err = replay_run(&other, schedule).unwrap_err();
        assert!(
            matches!(err, RunError::ScheduleDiverged { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn replay_policy_without_schedule_fails_fast() {
        let mut pb = ProgramBuilder::new();
        let main = pb.function("main", 0, |f| f.ret(None));
        let program = pb.finish(main).unwrap();
        let cfg = RunConfig {
            policy: SchedPolicy::Replay { relaxed: false },
            ..RunConfig::default()
        };
        let err = Vm::new(&program, cfg).unwrap_err();
        assert_eq!(err, RunError::ScheduleMissing);
        assert!(err.to_string().contains("no schedule"));
    }

    #[test]
    fn aborted_run_records_a_final_abort_decision_and_replays_to_the_same_error() {
        let mut pb = ProgramBuilder::new();
        let main = pb.function("main", 0, |f| {
            let head = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let _ = f.add(1, 1);
            f.jump(head);
        });
        let program = pb.finish(main).unwrap();
        let cfg = RunConfig {
            max_instructions: 5_000,
            record_sched: true,
            ..RunConfig::default()
        };
        let mut vm = Vm::new(&program, cfg).unwrap();
        let err = vm.run(&mut NullTool).unwrap_err();
        assert_eq!(err, RunError::InstructionLimit { limit: 5_000 });
        let schedule = vm.take_recorded_schedule().unwrap();
        let last = schedule.decisions.last().expect("abort slice flushed");
        assert_eq!(last.cause, drms_trace::sched::PreemptCause::Abort);
        // Replaying the failing schedule reproduces the same abort.
        let replay_cfg = RunConfig {
            policy: SchedPolicy::Replay { relaxed: false },
            max_instructions: 5_000,
            replay: Some(std::sync::Arc::new(schedule)),
            ..RunConfig::default()
        };
        let mut vm = Vm::new(&program, replay_cfg).unwrap();
        let err2 = vm.run(&mut NullTool).unwrap_err();
        assert_eq!(err2, RunError::InstructionLimit { limit: 5_000 });
    }

    #[test]
    fn run_error_source_chain_exposes_validate_cause() {
        use std::error::Error as _;
        let validate = ValidateError::BadMain;
        let err = RunError::Validate(validate.clone());
        let source = err.source().expect("validate carries a source");
        assert_eq!(source.to_string(), validate.to_string());
        assert!(RunError::ScheduleMissing.source().is_none());
    }

    #[test]
    fn vm_debug_is_nonempty() {
        let mut pb = ProgramBuilder::new();
        let main = pb.function("main", 0, |f| f.ret(None));
        let program = pb.finish(main).unwrap();
        let vm = Vm::new(&program, RunConfig::default()).unwrap();
        assert!(format!("{vm:?}").contains("Vm"));
    }

    /// A threaded, syscalling guest for the metrics tests.
    fn metrics_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(4);
        let worker = pb.function("worker", 1, |f| {
            let buf = f.alloc(16);
            let n = f.syscall(crate::kernel::SyscallNo::Read, 0, buf, 16, 0);
            f.store(g.raw() as i64, 0, n);
            f.ret(None);
        });
        let main = pb.function("main", 0, |f| {
            let a = f.spawn(worker, &[Operand::Imm(0)]);
            let b = f.spawn(worker, &[Operand::Imm(1)]);
            f.join(a);
            f.join(b);
        });
        pb.finish(main).unwrap()
    }

    #[test]
    fn metrics_cover_the_run_and_survive_the_audit() {
        let program = metrics_program();
        let cfg = RunConfig {
            quantum: 3,
            ..RunConfig::with_devices(vec![Device::Stream { seed: 3 }])
        };
        let mut vm = Vm::new(&program, cfg).unwrap();
        let stats = vm.run(&mut NullTool).unwrap();
        let m = vm.metrics();
        assert_eq!(m.audit(), Ok(()), "a healthy run is self-consistent");
        assert_eq!(m.counter("vm.events.total"), stats.events);
        assert_eq!(m.counter("vm.events.thread_start"), 3, "main + two workers");
        assert_eq!(m.counter("vm.basic_blocks"), stats.basic_blocks);
        assert_eq!(m.counter("vm.syscalls"), stats.syscalls);
        assert_eq!(m.counter("kernel.transfers"), 2);
        assert_eq!(m.counter("kernel.cells_in"), 32);
        assert_eq!(m.gauge("vm.threads"), 3);
        assert!(m.counter("sched.slices") > 0);
        let steps = m.histogram("sched.slice.steps").unwrap();
        assert_eq!(steps.total, m.counter("sched.slices"));
        let cells = m.histogram("kernel.transfer.cells").unwrap();
        assert_eq!(cells.total, 2);
        assert_eq!(cells.sum, 32);
    }

    #[test]
    fn metrics_json_is_byte_identical_across_same_seed_runs() {
        let program = metrics_program();
        let run = || {
            let cfg = RunConfig {
                policy: SchedPolicy::Random { seed: 11 },
                quantum: 3,
                ..RunConfig::with_devices(vec![Device::Stream { seed: 3 }])
            };
            let mut vm = Vm::new(&program, cfg).unwrap();
            vm.run(&mut NullTool).unwrap();
            vm.metrics()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_prometheus(), b.to_prometheus());
    }

    /// Every dispatch mode and batch size must execute the same run: a
    /// threaded, syscalling, memory-heavy guest produces identical
    /// stats, metrics and event traces under `Off`, `Blocks` and
    /// `Fused` decoding with per-event and batched delivery.
    #[test]
    fn decoded_dispatch_matches_interpreted_reference() {
        use crate::recorder::TraceRecorder;
        use crate::stats::DecodeMode;

        let mut pb = ProgramBuilder::new();
        let g = pb.global(8);
        let sem = pb.semaphore(0);
        let worker = pb.function("worker", 1, |f| {
            let buf = f.alloc(16);
            let n = f.syscall(crate::kernel::SyscallNo::Read, 0, buf, 16, 0);
            let acc = f.copy(0);
            f.for_range(0, 24, |f, i| {
                let v = f.load(buf, i);
                let r = f.rand(7);
                let s = f.add(v, r);
                let t = f.add(acc, s);
                f.assign(acc, t);
                f.store(buf, i, t);
            });
            f.store(g.raw() as i64, 0, n);
            f.sem_signal(sem);
            f.ret(None);
        });
        let main = pb.function("main", 0, |f| {
            let a = f.spawn(worker, &[Operand::Imm(0)]);
            let b = f.spawn(worker, &[Operand::Imm(1)]);
            f.sem_wait(sem);
            f.sem_wait(sem);
            f.join(a);
            f.join(b);
        });
        let program = pb.finish(main).unwrap();

        let run = |decode: DecodeMode, event_batch: usize| {
            let cfg = RunConfig {
                policy: SchedPolicy::Random { seed: 17 },
                quantum: 3,
                trace_blocks: true,
                decode,
                event_batch,
                ..RunConfig::with_devices(vec![Device::Stream { seed: 5 }])
            };
            let mut vm = Vm::new(&program, cfg).unwrap();
            let mut rec = TraceRecorder::new();
            let stats = vm.run(&mut rec).unwrap();
            (stats, vm.metrics().to_json(), format!("{:?}", rec.traces()))
        };

        let reference = run(DecodeMode::Off, 1);
        for decode in [DecodeMode::Off, DecodeMode::Blocks, DecodeMode::Fused] {
            for batch in [1, 4, 128] {
                let got = run(decode, batch);
                assert_eq!(
                    got, reference,
                    "decode={decode} batch={batch} diverged from interpreted per-event run"
                );
            }
        }
    }

    #[test]
    fn metrics_of_an_aborted_run_still_audit_cleanly() {
        let cfg = RunConfig {
            max_instructions: 2_000,
            ..RunConfig::default()
        };
        let err = run_main(
            |f| {
                let head = f.new_block();
                f.jump(head);
                f.switch_to(head);
                let _ = f.add(1, 1);
                f.jump(head);
            },
            cfg.clone(),
        )
        .unwrap_err();
        assert_eq!(err, RunError::InstructionLimit { limit: 2_000 });
        let mut pb = ProgramBuilder::new();
        let main = pb.function("main", 0, |f| {
            let head = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let _ = f.add(1, 1);
            f.jump(head);
        });
        let program = pb.finish(main).unwrap();
        let mut vm = Vm::new(&program, cfg).unwrap();
        vm.run(&mut NullTool).unwrap_err();
        let m = vm.metrics();
        assert_eq!(m.audit(), Ok(()), "graceful degradation includes metrics");
        assert!(m.counter("sched.preempt.abort") > 0, "abort slice counted");
    }
}
