//! Run configuration and execution statistics.

use crate::fault::{FaultCounters, FaultPlan};
use crate::kernel::Device;
use drms_trace::Schedule;
use std::sync::Arc;

/// How thread cost is accumulated.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum CostKind {
    /// One unit per executed basic block — the paper's default measure,
    /// which "yields the same trends compared to running time measurements,
    /// but is faster and produces neater charts with much lower variance".
    #[default]
    BasicBlocks,
    /// Simulated nanoseconds: per-instruction latencies plus seeded jitter
    /// modelling cache/timer noise. Used to reproduce the noisy
    /// running-time plot of Figure 10.
    SimNanos {
        /// Seed of the jitter generator.
        jitter_seed: u64,
    },
}

/// Dispatch strategy of the interpreter's hot loop.
///
/// All three modes are observably equivalent: same event stream, same
/// [`RunStats`], same metrics, same recorded schedules. They differ only
/// in how fast the VM gets there, which is what the differential
/// property suite (and the CI byte-identity gate on sweep artifacts)
/// asserts.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum DecodeMode {
    /// Interpret the [`Program`](crate::Program) IR directly, one
    /// instruction per dispatch — the legacy reference path.
    Off,
    /// Pre-decode every routine into flat
    /// [`DecodedProgram`](crate::DecodedProgram) blocks (operands
    /// resolved, jump targets as block indices) and run the tight
    /// block-dispatch loop over them.
    Blocks,
    /// Like [`Blocks`](DecodeMode::Blocks), plus superinstruction fusion
    /// of the hottest adjacent opcode pairs in the sweep families
    /// (`Bin;Bin`, `Bin;Load`, `Load;Bin`). The default.
    #[default]
    Fused,
}

impl DecodeMode {
    /// The mode's CLI spelling (`--decode off|blocks|fused`).
    pub fn as_str(self) -> &'static str {
        match self {
            DecodeMode::Off => "off",
            DecodeMode::Blocks => "blocks",
            DecodeMode::Fused => "fused",
        }
    }
}

impl std::fmt::Display for DecodeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for DecodeMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(DecodeMode::Off),
            "blocks" => Ok(DecodeMode::Blocks),
            "fused" => Ok(DecodeMode::Fused),
            other => Err(format!(
                "unknown decode mode `{other}` (off | blocks | fused)"
            )),
        }
    }
}

/// Thread-scheduling policy of the serializing scheduler.
///
/// Like Valgrind, the VM runs one guest thread at a time; the policy picks
/// which runnable thread owns the next quantum. Different policies produce
/// different interleavings, backing the paper's scheduler-sensitivity
/// study (§4.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Cycle through runnable threads in id order.
    #[default]
    RoundRobin,
    /// Pick a uniformly random runnable thread (seeded, reproducible).
    Random { seed: u64 },
    /// Seeded fuzzing policy: random thread pick, random per-slice
    /// quantum in `[1, quantum]`, and probabilistic preemption right
    /// after sync operations and kernel transfers — the decision points
    /// where interleaving changes drms.
    Chaos { seed: u64 },
    /// Drive the scheduler from the recorded [`Schedule`] in
    /// [`RunConfig::replay`]. Strict mode (`relaxed: false`) verifies
    /// every slice against the recording and fails with
    /// [`RunError::ScheduleDiverged`](crate::RunError::ScheduleDiverged)
    /// on any mismatch; relaxed mode follows a mutated schedule as
    /// closely as the program allows (used by the shrinker).
    Replay { relaxed: bool },
}

/// Configuration of one guest execution.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// Scheduling quantum, in basic blocks.
    pub quantum: u32,
    /// Safety cap on total executed instructions.
    ///
    /// Exceeding it aborts the run with
    /// [`RunError::InstructionLimit`](crate::RunError::InstructionLimit).
    pub max_instructions: u64,
    /// Optional wall-clock budget for the whole run, checked once per
    /// scheduler slice. Exceeding it aborts the run with
    /// [`RunError::DeadlineExceeded`](crate::RunError::DeadlineExceeded);
    /// the error reports the *configured* budget, never the elapsed
    /// time, so aborts stay byte-deterministic. `None` (the default)
    /// runs without a deadline.
    pub deadline: Option<std::time::Duration>,
    /// Devices pre-opened as file descriptors `0..n`.
    pub devices: Vec<Device>,
    /// Cost measure reported to tools.
    pub cost: CostKind,
    /// Whether to deliver per-basic-block events to the tool.
    pub trace_blocks: bool,
    /// Seed of the guest `Rand` instruction (per-thread streams are
    /// derived from it).
    pub seed: u64,
    /// Optional kernel fault-injection plan (see
    /// [`FaultPlan::parse`] for the spec grammar). `None` runs
    /// fault-free.
    pub faults: Option<FaultPlan>,
    /// Record every scheduling decision into a [`Schedule`], retrievable
    /// via [`Vm::take_recorded_schedule`](crate::Vm::take_recorded_schedule)
    /// after the run. Works under any policy.
    pub record_sched: bool,
    /// The schedule to follow when the policy is
    /// [`SchedPolicy::Replay`]. Required for that policy
    /// ([`RunError::ScheduleMissing`](crate::RunError::ScheduleMissing)
    /// otherwise); ignored by the others.
    pub replay: Option<Arc<Schedule>>,
    /// Interpreter dispatch strategy (see [`DecodeMode`]). Replay runs
    /// always use the reference interpreter regardless of this setting —
    /// replay is a correctness mode, never a hot path.
    pub decode: DecodeMode,
    /// Capacity of the struct-of-arrays [`EventBatch`](crate::EventBatch)
    /// that the decoded dispatch loop fills with read/write events before
    /// flushing it to the tool at block boundaries (or when full).
    /// `1` delivers every event immediately (per-event mode); `0` is
    /// invalid and treated as `1` by the VM, but rejected at admission
    /// by front ends (`--batch`, `aprofd`). Ignored under
    /// [`DecodeMode::Off`], which always delivers per-event.
    pub event_batch: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            policy: SchedPolicy::RoundRobin,
            quantum: 50,
            max_instructions: 500_000_000,
            deadline: None,
            devices: Vec::new(),
            cost: CostKind::BasicBlocks,
            trace_blocks: false,
            seed: 0xD125_5EED,
            faults: None,
            record_sched: false,
            replay: None,
            decode: DecodeMode::default(),
            event_batch: 512,
        }
    }
}

impl RunConfig {
    /// A config with the given devices and defaults elsewhere.
    pub fn with_devices(devices: Vec<Device>) -> Self {
        RunConfig {
            devices,
            ..Self::default()
        }
    }
}

/// Per-kind tallies of the instrumentation events delivered to the
/// tool. Kept as plain fields (not a map) so the hot loop pays one
/// integer increment per event; [`Vm::metrics`](crate::Vm::metrics)
/// folds them into the observability registry after the run, where
/// `Metrics::audit` cross-checks their sum against
/// [`RunStats::events`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// `on_thread_start` deliveries.
    pub thread_start: u64,
    /// `on_thread_exit` deliveries.
    pub thread_exit: u64,
    /// `on_thread_switch` deliveries.
    pub thread_switch: u64,
    /// `on_call` deliveries.
    pub call: u64,
    /// `on_return` deliveries.
    pub ret: u64,
    /// `on_read` deliveries.
    pub read: u64,
    /// `on_write` deliveries.
    pub write: u64,
    /// `on_sync` deliveries.
    pub sync: u64,
    /// `on_block` deliveries (only under `trace_blocks`).
    pub block: u64,
    /// `on_kernel_to_user` deliveries.
    pub kernel_to_user: u64,
    /// `on_user_to_kernel` deliveries.
    pub user_to_kernel: u64,
}

impl EventCounters {
    /// Sum over every kind — must equal [`RunStats::events`].
    pub fn total(&self) -> u64 {
        self.thread_start
            + self.thread_exit
            + self.thread_switch
            + self.call
            + self.ret
            + self.read
            + self.write
            + self.sync
            + self.block
            + self.kernel_to_user
            + self.user_to_kernel
    }

    /// `(name, count)` pairs in metric-name order, for registry export.
    pub fn by_kind(&self) -> [(&'static str, u64); 11] {
        [
            ("thread_start", self.thread_start),
            ("thread_exit", self.thread_exit),
            ("thread_switch", self.thread_switch),
            ("call", self.call),
            ("return", self.ret),
            ("read", self.read),
            ("write", self.write),
            ("sync", self.sync),
            ("block", self.block),
            ("kernel_to_user", self.kernel_to_user),
            ("user_to_kernel", self.user_to_kernel),
        ]
    }
}

/// Statistics of a completed guest execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total executed instructions (terminators included).
    pub instructions: u64,
    /// Total entered basic blocks across all threads.
    pub basic_blocks: u64,
    /// Entered basic blocks per thread, indexed by thread id.
    pub per_thread_blocks: Vec<u64>,
    /// Simulated nanoseconds per thread, indexed by thread id.
    pub per_thread_nanos: Vec<u64>,
    /// Number of thread context switches performed by the scheduler.
    pub thread_switches: u64,
    /// Number of system calls serviced.
    pub syscalls: u64,
    /// Total threads ever created (main included).
    pub threads: u32,
    /// Guest memory pages mapped at exit.
    pub guest_pages: u64,
    /// Host bytes backing guest memory at exit.
    pub guest_bytes: u64,
    /// Instrumentation events delivered to the tool.
    pub events: u64,
    /// The same events, tallied per callback kind.
    pub events_by_kind: EventCounters,
    /// Injected-fault and errno-delivery counters (all zero on
    /// fault-free runs).
    pub faults: FaultCounters,
}

impl RunStats {
    /// Cost of thread `t` under the given cost kind.
    pub fn thread_cost(&self, t: usize, kind: CostKind) -> u64 {
        match kind {
            CostKind::BasicBlocks => self.per_thread_blocks.get(t).copied().unwrap_or(0),
            CostKind::SimNanos { .. } => self.per_thread_nanos.get(t).copied().unwrap_or(0),
        }
    }

    /// Sum of all threads' basic-block counts (equals `basic_blocks`).
    pub fn total_blocks(&self) -> u64 {
        self.per_thread_blocks.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = RunConfig::default();
        assert!(c.quantum > 0);
        assert!(c.max_instructions > 1_000_000);
        assert_eq!(c.policy, SchedPolicy::RoundRobin);
        assert_eq!(c.cost, CostKind::BasicBlocks);
        assert!(!c.trace_blocks);
    }

    #[test]
    fn with_devices_sets_devices() {
        let c = RunConfig::with_devices(vec![Device::Sink]);
        assert_eq!(c.devices.len(), 1);
    }

    #[test]
    fn event_counters_total_matches_by_kind_sum() {
        let c = EventCounters {
            thread_start: 1,
            thread_exit: 2,
            thread_switch: 3,
            call: 4,
            ret: 5,
            read: 6,
            write: 7,
            sync: 8,
            block: 9,
            kernel_to_user: 10,
            user_to_kernel: 11,
        };
        let by_kind_sum: u64 = c.by_kind().iter().map(|(_, v)| v).sum();
        assert_eq!(c.total(), by_kind_sum);
        assert_eq!(c.total(), 66);
        assert_eq!(c.by_kind().len(), 11, "one entry per EventSink callback");
    }

    #[test]
    fn thread_cost_selection() {
        let s = RunStats {
            per_thread_blocks: vec![10, 20],
            per_thread_nanos: vec![100, 200],
            basic_blocks: 30,
            ..Default::default()
        };
        assert_eq!(s.thread_cost(1, CostKind::BasicBlocks), 20);
        assert_eq!(s.thread_cost(1, CostKind::SimNanos { jitter_seed: 0 }), 200);
        assert_eq!(s.thread_cost(9, CostKind::BasicBlocks), 0);
        assert_eq!(s.total_blocks(), 30);
    }
}
