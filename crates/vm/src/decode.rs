//! One-time pre-decode of guest programs into flat, dispatch-friendly
//! basic blocks.
//!
//! The reference interpreter re-examines each [`Inst`] on every
//! execution: a wide `match` over eighteen variants, most of which never
//! occur in a hot loop. The decode pass flattens every block into a
//! [`DecodedOp`] array once, before the run:
//!
//! * the plain, loop-dominating operations (`Mov`/`Bin`/`Load`/`Store`/
//!   `Alloc`/`Rand`) become dedicated variants the dispatch loop handles
//!   inline, with `Mov` split by operand kind so the loop never
//!   re-inspects an [`Operand`] it could have resolved at decode time;
//! * everything that can block, spawn, trap to the kernel or otherwise
//!   end a scheduling quantum becomes [`DecodedOp::Slow`], a back-pointer
//!   into the original block so the reference `exec_inst` path handles it
//!   unchanged — slow ops are rare by construction, so they pay the old
//!   price while the hot path pays the new one;
//! * under [`DecodeMode::Fused`], the hottest adjacent pairs in the sweep
//!   families' inner loops (`Bin;Bin` for index arithmetic + compare,
//!   `Bin;Load` for address computation + load, `Load;Bin` for
//!   load + accumulate) are fused into superinstructions, halving
//!   dispatch overhead where the interpreter spends most of its time.
//!
//! Decoded blocks keep the original block indices (a fused pair never
//! crosses a block boundary), so jump targets, `Frame::block` values and
//! every block-cost counter are identical across dispatch modes. Only the
//! intra-block instruction index changes meaning: it counts decoded
//! slots, and [`DecodedOp::Slow`] carries the original index it stands
//! for. Decoding never changes observable behavior — see the
//! differential suite in `tests/dispatch_equivalence.rs`.

use crate::ir::{BinOp, Inst, Operand, Program, Reg, Terminator};
use crate::stats::DecodeMode;
use drms_trace::RoutineId;
use std::sync::Arc;

/// One half of a fused superinstruction: a complete `Bin` operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BinHalf {
    /// The operation.
    pub op: BinOp,
    /// Destination register.
    pub dst: Reg,
    /// Left operand.
    pub lhs: Operand,
    /// Right operand.
    pub rhs: Operand,
}

/// A pre-decoded instruction slot.
///
/// Plain variants mirror the corresponding [`Inst`] arms; fused variants
/// pack two adjacent plain instructions into one dispatch; [`Slow`] defers
/// to the reference interpreter for everything else.
///
/// [`Slow`]: DecodedOp::Slow
#[derive(Clone, Debug, PartialEq)]
pub enum DecodedOp {
    /// `dst = imm` — a `Mov` whose source resolved at decode time.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// The constant.
        imm: i64,
    },
    /// `dst = regs[src]`.
    MovReg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = lhs op rhs`.
    Bin(BinHalf),
    /// `dst = memory[base + offset]`; emits a `read` event.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address operand.
        base: Operand,
        /// Offset operand.
        offset: Operand,
    },
    /// `memory[base + offset] = src`; emits a `write` event.
    Store {
        /// Base address operand.
        base: Operand,
        /// Offset operand.
        offset: Operand,
        /// Value operand.
        src: Operand,
    },
    /// Bump-allocates `cells` memory cells into `dst`.
    Alloc {
        /// Destination register.
        dst: Reg,
        /// Cell-count operand.
        cells: Operand,
    },
    /// `dst = uniform [0, bound)` from the thread RNG.
    Rand {
        /// Destination register.
        dst: Reg,
        /// Bound operand.
        bound: Operand,
    },
    /// Fused `Bin; Bin` (index arithmetic + compare/accumulate).
    BinBin(BinHalf, BinHalf),
    /// Fused `Bin; Load` (address computation + load).
    BinLoad {
        /// First half.
        a: BinHalf,
        /// Load destination.
        dst: Reg,
        /// Load base operand.
        base: Operand,
        /// Load offset operand.
        offset: Operand,
    },
    /// Fused `Load; Bin` (load + accumulate).
    LoadBin {
        /// Load destination.
        dst: Reg,
        /// Load base operand.
        base: Operand,
        /// Load offset operand.
        offset: Operand,
        /// Second half.
        b: BinHalf,
    },
    /// Anything that can block, spawn, sync or trap: executed by the
    /// reference `exec_inst` path. Carries the index of the original
    /// instruction within its (undecoded) block.
    Slow {
        /// Index into the original block's `insts`.
        ip: u32,
    },
}

/// A pre-decoded basic block: decoded slots plus the (unchanged)
/// terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodedBlock {
    /// Decoded instruction slots.
    pub ops: Vec<DecodedOp>,
    /// Control transfer ending the block; identical to the source block's.
    pub term: Terminator,
}

/// All decoded blocks of one routine, at the original block indices.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodedRoutine {
    /// Blocks, indexed exactly like the source routine's.
    pub blocks: Vec<DecodedBlock>,
}

/// Decode-time statistics, for observability and the `--decode` A/B
/// tooling.
///
/// Deliberately *not* folded into the run's [`Metrics`] registry: sweep
/// artifacts must stay byte-identical across dispatch modes, and decode
/// counters would differ between `off`/`blocks`/`fused`.
///
/// [`Metrics`]: drms_trace::Metrics
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Routines decoded.
    pub routines: u64,
    /// Basic blocks decoded.
    pub blocks: u64,
    /// Decoded slots emitted (fused pairs count once).
    pub ops: u64,
    /// Source instructions covered (fused pairs count twice).
    pub instructions: u64,
    /// Slots deferring to the reference interpreter.
    pub slow_ops: u64,
    /// `Bin;Bin` superinstructions formed.
    pub fused_bin_bin: u64,
    /// `Bin;Load` superinstructions formed.
    pub fused_bin_load: u64,
    /// `Load;Bin` superinstructions formed.
    pub fused_load_bin: u64,
}

impl DecodeStats {
    /// Total superinstructions formed.
    pub fn fused(&self) -> u64 {
        self.fused_bin_bin + self.fused_bin_load + self.fused_load_bin
    }
}

/// A guest program flattened for the fast dispatch loop.
///
/// Built once by [`DecodedProgram::decode`] and shared across runs (the
/// sweep shares one per `(family, size)` cell via [`Arc`]); the VM holds
/// it next to the source [`Program`], whose `Slow` instructions and
/// routine metadata it still references.
#[derive(Clone, Debug)]
pub struct DecodedProgram {
    routines: Vec<DecodedRoutine>,
    mode: DecodeMode,
    stats: DecodeStats,
}

impl DecodedProgram {
    /// Flattens `program` for fast dispatch. Fusion runs only under
    /// [`DecodeMode::Fused`]; [`DecodeMode::Off`] decodes like
    /// [`DecodeMode::Blocks`] (callers gate on the mode *before*
    /// deciding to decode at all).
    pub fn decode(program: &Program, mode: DecodeMode) -> Arc<DecodedProgram> {
        let fuse = mode == DecodeMode::Fused;
        let mut stats = DecodeStats::default();
        let routines = program
            .routines()
            .iter()
            .map(|r| {
                stats.routines += 1;
                let blocks = r
                    .blocks
                    .iter()
                    .map(|b| {
                        stats.blocks += 1;
                        decode_block(&b.insts, b.term.clone(), fuse, &mut stats)
                    })
                    .collect();
                DecodedRoutine { blocks }
            })
            .collect();
        Arc::new(DecodedProgram {
            routines,
            mode,
            stats,
        })
    }

    /// The mode this program was decoded under.
    pub fn mode(&self) -> DecodeMode {
        self.mode
    }

    /// Decode-time statistics.
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// The decoded routines, indexed by [`RoutineId`].
    pub fn routines(&self) -> &[DecodedRoutine] {
        &self.routines
    }

    /// Returns a decoded routine by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn routine(&self, id: RoutineId) -> &DecodedRoutine {
        &self.routines[id.index() as usize]
    }

    /// Whether this decoded image structurally matches `program`: same
    /// routine count and per-routine block count. A cheap sanity check
    /// for callers injecting a shared pre-decoded program.
    pub fn matches(&self, program: &Program) -> bool {
        self.routines.len() == program.routines().len()
            && self
                .routines
                .iter()
                .zip(program.routines())
                .all(|(d, s)| d.blocks.len() == s.blocks.len())
    }
}

/// Converts one plain instruction, or `None` if it must stay slow.
fn decode_plain(inst: &Inst) -> Option<DecodedOp> {
    Some(match *inst {
        Inst::Mov { dst, src } => match src {
            Operand::Imm(imm) => DecodedOp::MovImm { dst, imm },
            Operand::Reg(src) => DecodedOp::MovReg { dst, src },
        },
        Inst::Bin { op, dst, lhs, rhs } => DecodedOp::Bin(BinHalf { op, dst, lhs, rhs }),
        Inst::Load { dst, base, offset } => DecodedOp::Load { dst, base, offset },
        Inst::Store { base, offset, src } => DecodedOp::Store { base, offset, src },
        Inst::Alloc { dst, cells } => DecodedOp::Alloc { dst, cells },
        Inst::Rand { dst, bound } => DecodedOp::Rand { dst, bound },
        _ => return None,
    })
}

/// Fuses two adjacent decoded plain ops, when they form one of the
/// profitable pairs.
fn fuse_pair(a: &DecodedOp, b: &DecodedOp) -> Option<DecodedOp> {
    match (a, b) {
        (DecodedOp::Bin(x), DecodedOp::Bin(y)) => Some(DecodedOp::BinBin(*x, *y)),
        (DecodedOp::Bin(x), DecodedOp::Load { dst, base, offset }) => Some(DecodedOp::BinLoad {
            a: *x,
            dst: *dst,
            base: *base,
            offset: *offset,
        }),
        (DecodedOp::Load { dst, base, offset }, DecodedOp::Bin(y)) => Some(DecodedOp::LoadBin {
            dst: *dst,
            base: *base,
            offset: *offset,
            b: *y,
        }),
        _ => None,
    }
}

fn decode_block(
    insts: &[Inst],
    term: Terminator,
    fuse: bool,
    stats: &mut DecodeStats,
) -> DecodedBlock {
    let mut ops = Vec::with_capacity(insts.len());
    let mut i = 0usize;
    while i < insts.len() {
        let Some(a) = decode_plain(&insts[i]) else {
            stats.ops += 1;
            stats.instructions += 1;
            stats.slow_ops += 1;
            ops.push(DecodedOp::Slow { ip: i as u32 });
            i += 1;
            continue;
        };
        if fuse {
            if let Some(fused) = insts
                .get(i + 1)
                .and_then(decode_plain)
                .and_then(|b| fuse_pair(&a, &b))
            {
                match fused {
                    DecodedOp::BinBin(..) => stats.fused_bin_bin += 1,
                    DecodedOp::BinLoad { .. } => stats.fused_bin_load += 1,
                    DecodedOp::LoadBin { .. } => stats.fused_load_bin += 1,
                    _ => unreachable!(),
                }
                stats.ops += 1;
                stats.instructions += 2;
                ops.push(fused);
                i += 2;
                continue;
            }
        }
        stats.ops += 1;
        stats.instructions += 1;
        ops.push(a);
        i += 1;
    }
    ops.shrink_to_fit();
    DecodedBlock { ops, term }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    /// A loop summing a global array: the canonical hot block shape.
    fn sum_loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global_with(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let main = pb.declare("main", 0);
        pb.define(main, |f| {
            let acc = f.copy(0);
            f.for_range(0, 8, |f, i| {
                let v = f.load(g.raw() as i64, i);
                let s = f.add(acc, v);
                f.assign(acc, s);
            });
            f.ret(None);
        });
        pb.finish(main).unwrap()
    }

    #[test]
    fn blocks_mode_decodes_without_fusing() {
        let p = sum_loop_program();
        let d = DecodedProgram::decode(&p, DecodeMode::Blocks);
        assert_eq!(d.mode(), DecodeMode::Blocks);
        assert!(d.matches(&p));
        let s = d.stats();
        assert_eq!(s.routines, p.routines().len() as u64);
        let src_blocks: usize = p.routines().iter().map(|r| r.blocks.len()).sum();
        assert_eq!(s.blocks, src_blocks as u64);
        let src_insts: usize = p
            .routines()
            .iter()
            .flat_map(|r| &r.blocks)
            .map(|b| b.insts.len())
            .sum();
        assert_eq!(s.instructions, src_insts as u64, "every inst is covered");
        assert_eq!(s.ops, s.instructions, "no fusion → one slot per inst");
        assert_eq!(s.fused(), 0);
    }

    #[test]
    fn fused_mode_forms_superinstructions_in_the_hot_loop() {
        let p = sum_loop_program();
        let d = DecodedProgram::decode(&p, DecodeMode::Fused);
        let s = d.stats();
        assert!(s.fused() > 0, "the sum loop has fusable pairs: {s:?}");
        assert_eq!(
            s.instructions,
            DecodedProgram::decode(&p, DecodeMode::Blocks)
                .stats()
                .instructions,
            "fusion never changes instruction coverage"
        );
        assert_eq!(s.ops + s.fused(), s.instructions);
        // The loop body loads then accumulates: expect at least a
        // Load;Bin or Bin;Load pairing.
        assert!(s.fused_load_bin + s.fused_bin_load > 0, "{s:?}");
    }

    #[test]
    fn slow_ops_point_back_at_their_source_index() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("callee", 0);
        pb.define(callee, |f| f.ret(None));
        let main = pb.declare("main", 0);
        pb.define(main, |f| {
            let a = f.copy(1); // Mov           — plain, slot 0
            f.call(callee, &[]); // Call        — slow, source ip 1
            let b = f.add(a, a); // Bin         — plain
            f.assign(a, b); // Mov              — plain
            f.ret(None);
        });
        let p = pb.finish(main).unwrap();
        let d = DecodedProgram::decode(&p, DecodeMode::Blocks);
        let entry = &d.routine(p.main()).blocks[p.routine(p.main()).entry.index() as usize];
        let slow: Vec<_> = entry
            .ops
            .iter()
            .filter_map(|op| match op {
                DecodedOp::Slow { ip } => Some(*ip),
                _ => None,
            })
            .collect();
        assert_eq!(slow.len(), 1);
        let src = &p.routine(p.main()).blocks[p.routine(p.main()).entry.index() as usize];
        assert!(
            matches!(src.insts[slow[0] as usize], Inst::Call { .. }),
            "the Slow slot indexes the original Call"
        );
        assert!(d.stats().slow_ops >= 1);
    }

    #[test]
    fn fusion_never_crosses_a_slow_op() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("callee", 0);
        pb.define(callee, |f| f.ret(None));
        let main = pb.declare("main", 0);
        pb.define(main, |f| {
            let a = f.copy(1);
            let b = f.add(a, a); // Bin
            f.call(callee, &[]); // Call (slow) separates the two Bins
            let c = f.add(b, b); // Bin
            f.assign(a, c);
            f.ret(None);
        });
        let p = pb.finish(main).unwrap();
        let d = DecodedProgram::decode(&p, DecodeMode::Fused);
        let entry = &d.routine(p.main()).blocks[p.routine(p.main()).entry.index() as usize];
        assert!(
            !entry
                .ops
                .iter()
                .any(|op| matches!(op, DecodedOp::BinBin(..))),
            "Bin;Call;Bin must not fuse across the call: {:?}",
            entry.ops
        );
    }

    #[test]
    fn mov_splits_by_operand_kind() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main", 0);
        pb.define(main, |f| {
            let a = f.copy(7); // Mov imm
            let b = f.copy(0);
            f.assign(b, a); // Mov reg
            f.ret(None);
        });
        let p = pb.finish(main).unwrap();
        let d = DecodedProgram::decode(&p, DecodeMode::Blocks);
        let entry = &d.routine(p.main()).blocks[p.routine(p.main()).entry.index() as usize];
        assert!(entry
            .ops
            .iter()
            .any(|o| matches!(o, DecodedOp::MovImm { .. })));
        assert!(entry
            .ops
            .iter()
            .any(|o| matches!(o, DecodedOp::MovReg { .. })));
    }
}
