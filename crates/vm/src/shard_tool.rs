//! Spilling the live event stream to on-disk shards, and replaying
//! shards back into tools with native batch delivery.
//!
//! [`ShardRecorder`] is the [`Tool`] face of
//! [`drms_trace::shard::ShardWriter`]: attach it next to a profiler
//! (via [`MultiTool`](crate::MultiTool) or a session's extra-tool list)
//! and every callback — including whole struct-of-arrays
//! [`EventBatch`] flushes, persisted columnar without unrolling — is
//! appended to the per-thread shard files. [`replay_shards_into`] is
//! the offline other half: it walks a loaded [`ShardSet`] in global
//! record order and delivers `BATCH` frames through
//! [`Tool::observe_batch`] exactly as the VM did live, so a
//! write-then-replay run reproduces the in-memory run byte-for-byte.

use crate::batch::{BatchKind, EventBatch};
use crate::tool::Tool;
use drms_trace::shard::{
    deliver_frame, ShardBatchKind, ShardEvent, ShardPayload, ShardSet, ShardSummary, ShardWriter,
};
use drms_trace::{Addr, BlockId, EventSink, RoutineId, SyncOp, ThreadId};
use std::io;

/// A [`Tool`] that appends every instrumentation event to an on-disk
/// shard directory through a [`ShardWriter`].
///
/// Recording is infallible (the writer latches its first host-I/O
/// error); call [`ShardRecorder::finish`] after the run to flush,
/// publish the manifest, and surface any latched fault.
pub struct ShardRecorder {
    writer: ShardWriter,
}

impl ShardRecorder {
    /// Wraps an open shard writer.
    pub fn new(writer: ShardWriter) -> Self {
        ShardRecorder { writer }
    }

    /// The first latched host-I/O error, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.writer.error()
    }

    /// Finishes the underlying writer: flush, fsync, atomic manifest.
    pub fn finish(self) -> io::Result<ShardSummary> {
        self.writer.finish()
    }
}

impl EventSink for ShardRecorder {
    fn on_thread_start(&mut self, thread: ThreadId, parent: Option<ThreadId>) {
        self.writer
            .record_event(thread, ShardEvent::ThreadStart { parent });
    }
    fn on_thread_exit(&mut self, thread: ThreadId, cost: u64) {
        self.writer
            .record_event(thread, ShardEvent::ThreadExit { cost });
    }
    fn on_thread_switch(&mut self, from: Option<ThreadId>, to: ThreadId) {
        // Stored in the *incoming* thread's shard; the global sequence
        // number keeps its place in the merged order.
        self.writer
            .record_event(to, ShardEvent::ThreadSwitch { from });
    }
    fn on_call(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        self.writer
            .record_event(thread, ShardEvent::Call { routine, cost });
    }
    fn on_return(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        self.writer
            .record_event(thread, ShardEvent::Return { routine, cost });
    }
    fn on_read(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.writer
            .record_event(thread, ShardEvent::Read { addr, len });
    }
    fn on_write(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.writer
            .record_event(thread, ShardEvent::Write { addr, len });
    }
    fn on_user_to_kernel(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.writer
            .record_event(thread, ShardEvent::UserToKernel { addr, len });
    }
    fn on_kernel_to_user(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.writer
            .record_event(thread, ShardEvent::KernelToUser { addr, len });
    }
    fn on_sync(&mut self, thread: ThreadId, op: SyncOp) {
        self.writer.record_event(thread, ShardEvent::Sync { op });
    }
    fn on_block(&mut self, thread: ThreadId, routine: RoutineId, block: BlockId) {
        self.writer
            .record_event(thread, ShardEvent::Block { routine, block });
    }
    // on_finish is deliberately not recorded: the offline replay driver
    // finishes its sinks itself, once, after the merged stream ends.
}

impl Tool for ShardRecorder {
    fn name(&self) -> &str {
        "shard-writer"
    }

    fn shadow_bytes(&self) -> u64 {
        // The writer's state is bounded I/O buffering, not shadow
        // memory; it does not count against a tool's shadow budget.
        0
    }

    /// Native batch path: one frame persists the whole batch columnar,
    /// preserving the struct-of-arrays layout end to end.
    fn observe_batch(&mut self, batch: &EventBatch) {
        let (kinds, addrs, lens) = batch.arrays();
        let entries = kinds.iter().zip(addrs).zip(lens).map(|((&k, &a), &l)| {
            let k = match k {
                BatchKind::Read => ShardBatchKind::Read,
                BatchKind::Write => ShardBatchKind::Write,
            };
            (k, a, l)
        });
        self.writer.record_batch(batch.thread(), entries);
    }
}

/// Replays a loaded shard set into `tool` with the live run's delivery
/// shape: single events arrive through their [`EventSink`] callbacks,
/// `BATCH` frames arrive through [`Tool::observe_batch`] as one
/// reconstructed [`EventBatch`] each. Finishes the tool at the end.
pub fn replay_shards_into<T: Tool + ?Sized>(set: &ShardSet, tool: &mut T) {
    let mut batch = EventBatch::default();
    for frame in set.frames_in_order() {
        match &frame.payload {
            ShardPayload::Batch(entries) => {
                batch.clear();
                batch.ensure_capacity(entries.len());
                batch.set_thread(frame.thread);
                for &(kind, addr, len) in entries {
                    let kind = match kind {
                        ShardBatchKind::Read => BatchKind::Read,
                        ShardBatchKind::Write => BatchKind::Write,
                    };
                    batch.push(kind, addr, len);
                }
                tool.observe_batch(&batch);
            }
            ShardPayload::Event(_) => deliver_frame(frame, tool),
        }
    }
    tool.on_finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::interp::run_program;
    use crate::ir::Program;
    use crate::recorder::TraceRecorder;
    use crate::stats::{DecodeMode, RunConfig};
    use crate::tool::MultiTool;
    use drms_trace::hostio::HostIo;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("drms-shard-tool-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn two_thread_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(16);
        let worker = pb.function("worker", 0, |f| {
            f.for_range(0, 16, |f, i| {
                f.store(g.raw() as i64, i, 7);
            });
            f.ret(None);
        });
        let main = pb.function("main", 0, |f| {
            let t = f.spawn(worker, &[]);
            f.for_range(0, 16, |f, i| {
                let _ = f.load(g.raw() as i64, i);
            });
            f.join(t);
            f.ret(None);
        });
        pb.finish(main).unwrap()
    }

    /// Live record through the batched decoded pipeline, then offline
    /// native-batch replay: the replayed tool must observe the exact
    /// event stream the live tool did.
    #[test]
    fn spill_and_replay_reproduces_the_live_stream() {
        let dir = tmp_dir("equiv");
        let program = two_thread_program();
        let config = RunConfig {
            decode: DecodeMode::Fused,
            event_batch: 8,
            ..RunConfig::default()
        };

        let io = HostIo::real();
        let writer = ShardWriter::create(&io, &dir, 64).unwrap();
        let mut shard = ShardRecorder::new(writer);
        let mut live = TraceRecorder::new();
        let mut fan = MultiTool::new();
        fan.push(&mut shard);
        fan.push(&mut live);
        run_program(&program, config, &mut fan).unwrap();
        let summary = shard.finish().unwrap();
        assert!(summary.frames > 0);

        let set = ShardSet::load(&dir, 4).unwrap();
        assert_eq!(set.dropped, 0);
        let mut replayed = TraceRecorder::new();
        replay_shards_into(&set, &mut replayed);

        let live: Vec<_> = live.into_traces();
        let replayed: Vec<_> = replayed.into_traces();
        assert_eq!(live.len(), replayed.len());
        for (a, b) in live.iter().zip(&replayed) {
            assert_eq!(a.events(), b.events(), "identical per-thread streams");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
